"""The shared staged join engine.

One driver executes every join algorithm in the repository.  An algorithm
contributes a :class:`~repro.engine.stages.CandidateStage` (all of its
randomness and policy) and optionally a custom filter stage; the engine owns
everything the three historical drivers used to hand-roll separately:

* **seeding** — :meth:`JoinEngine.repetition_rng` derives the per-repetition
  generator from ``(seed, stream, repetition)``, the scheme every algorithm
  shares;
* **stats accounting** — pre-candidate / candidate / verified counters and
  the per-stage wall-clock split (``candidate_seconds`` / ``filter_seconds``
  / ``verify_seconds`` on :class:`repro.result.JoinStats`);
* **side-masking** — R ⋈ S side labels travel with the preprocessed
  collection into the backend filter kernels, so same-side pairs are dropped
  before any counting regardless of the algorithm;
* **memory-bounded batching** — tasks are drained from the candidate stage
  and flushed through filter + verify whenever the accumulated candidate
  count reaches ``batch_budget``, so the engine never materializes more than
  one batch of survivor arrays at a time.

Because candidate generation is the only randomized stage and verification
never feeds back into it, the staged execution is bit-for-bit equivalent to
the historical fused loops: identical result pairs, identical counters.
"""

from __future__ import annotations

import time
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.backend import ExecutionBackend, make_backend
from repro.core.preprocess import PreprocessedCollection
from repro.engine.stages import (
    CandidateStage,
    DedupStage,
    PairCandidates,
    PointCandidates,
    SketchFilterStage,
    SubsetCandidates,
    VerifyStage,
)
from repro.hashing.sketch import sketch_similarity_threshold
from repro.obs.tracing import event, span
from repro.result import JoinStats

__all__ = ["JoinEngine"]

Pair = Tuple[int, int]


class JoinEngine:
    """Drives candidate → dedup → filter → verify over one collection.

    Parameters
    ----------
    collection:
        The preprocessed records the join runs over (carries the R ⋈ S side
        labels, if any).
    threshold:
        Similarity threshold ``λ`` on the measure's own scale.
    backend:
        Execution backend name (``"python"`` / ``"numpy"``) or instance.
    use_sketches / sketch_false_negative_rate:
        Configuration of the default :class:`SketchFilterStage` (``δ``
        determines the estimator cut-off ``λ̂``).  The sketches estimate
        *Jaccard* similarity, so for a non-default measure the cut-off is
        derived from the measure's Jaccard floor — the smallest Jaccard any
        pair meeting the threshold can have.  Measures with a zero floor
        (overlap coefficient, containment) admit pairs of arbitrarily low
        Jaccard, so the sketch filter is unusable and must be disabled.
    measure:
        Similarity measure (name, instance or ``None`` for Jaccard) the
        verification kernels score under.  Ignored when ``backend`` is an
        already constructed instance (the instance's measure wins).
    batch_budget:
        Maximum number of pre-filter candidate pairs accumulated before a
        batch is flushed through the filter and verify stages (bounds the
        engine's working memory).
    """

    DEFAULT_BATCH_BUDGET = 1 << 16

    def __init__(
        self,
        collection: PreprocessedCollection,
        threshold: float,
        backend=None,
        use_sketches: bool = True,
        sketch_false_negative_rate: float = 0.05,
        batch_budget: int = DEFAULT_BATCH_BUDGET,
        measure=None,
    ) -> None:
        if batch_budget < 1:
            raise ValueError("batch_budget must be positive")
        self.collection = collection
        self.threshold = threshold
        self.backend: ExecutionBackend = make_backend(backend, collection, threshold, measure)
        self.measure = self.backend.measure
        jaccard_floor = self.measure.jaccard_floor(threshold)
        if use_sketches and jaccard_floor <= 0.0:
            raise ValueError(
                f"measure {self.measure.name!r} has no positive Jaccard floor at "
                f"threshold {threshold}; the 1-bit minwise sketch filter cannot be "
                "used — pass use_sketches=False or use an exact algorithm"
            )
        self.use_sketches = use_sketches
        self.sketch_cutoff = sketch_similarity_threshold(
            jaccard_floor if use_sketches else threshold,
            collection.sketches.num_bits,
            sketch_false_negative_rate,
        )
        self.batch_budget = batch_budget
        self.verify_stage = VerifyStage(self.backend)

    # ------------------------------------------------------------------ seeding
    @staticmethod
    def repetition_rng(
        seed: Optional[int], repetition: int = 0, stream: int = 1
    ) -> np.random.Generator:
        """Per-repetition generator: ``default_rng(seed * stream + repetition)``.

        ``stream`` is an algorithm-specific odd multiplier keeping the
        repetition streams of different algorithms disjoint at equal seeds;
        ``seed=None`` yields OS entropy, as everywhere else in the library.
        """
        return np.random.default_rng(None if seed is None else seed * stream + repetition)

    def default_filter_stage(self) -> SketchFilterStage:
        """The standard size-probe + ``λ̂``-cut-off sketch filter stage."""
        return SketchFilterStage(self.backend, self.use_sketches, self.sketch_cutoff)

    # ------------------------------------------------------------------ execution
    def execute(
        self,
        candidates: CandidateStage,
        stats: JoinStats,
        filter_stage: Optional[SketchFilterStage] = None,
        dedup: Optional[DedupStage] = None,
    ) -> Set[Pair]:
        """Run the full pipeline; returns the verified result pair set.

        Counters and the per-stage timing split are accumulated into
        ``stats`` in place.  The candidate stage is consumed lazily: time
        spent producing tasks (including all recursion and bucketing work)
        lands in ``candidate_seconds``, the filter and verify stages are
        timed per flushed batch.
        """
        filter_stage = filter_stage if filter_stage is not None else self.default_filter_stage()
        dedup = dedup if dedup is not None else DedupStage()

        with span(
            "engine.execute",
            algorithm=stats.algorithm or type(candidates).__name__,
            backend=self.backend.name,
        ) as engine_span:
            pending: List = []
            pending_cost = 0
            generator = candidates.tasks()
            while True:
                started = time.perf_counter()
                task = next(generator, None)
                stats.candidate_seconds += time.perf_counter() - started
                if task is None:
                    break
                pending.append(task)
                pending_cost += task.cost
                if pending_cost >= self.batch_budget:
                    self._flush(pending, stats, filter_stage, dedup)
                    pending = []
                    pending_cost = 0
            if pending:
                self._flush(pending, stats, filter_stage, dedup)
            if engine_span.enabled:
                event("engine.candidate", seconds=stats.candidate_seconds)
                engine_span.annotate(
                    pre_candidates=stats.pre_candidates,
                    candidates=stats.candidates,
                    results=len(dedup.result),
                )
        return dedup.result

    def _flush(
        self,
        tasks: List,
        stats: JoinStats,
        filter_stage: SketchFilterStage,
        dedup: DedupStage,
    ) -> None:
        """Filter one task batch, then verify the concatenated survivors."""
        started = time.perf_counter()
        with span("engine.filter", tasks=len(tasks)) as filter_span:
            surviving_firsts: List[np.ndarray] = []
            surviving_seconds: List[np.ndarray] = []
            for task in tasks:
                if isinstance(task, SubsetCandidates):
                    pre, firsts, seconds = filter_stage.filter_subset(task.subset)
                    stats.pre_candidates += pre
                elif isinstance(task, PointCandidates):
                    pre, firsts, seconds = filter_stage.filter_point(task.anchor, task.others)
                    stats.pre_candidates += pre
                elif isinstance(task, PairCandidates):
                    # Raw emissions were counted by the producer; dedup here.
                    fresh = dedup.unique_candidates(task.pairs)
                    if not fresh:
                        continue
                    pairs_array = np.asarray(fresh, dtype=np.intp)
                    firsts, seconds = pairs_array[:, 0], pairs_array[:, 1]
                    # Side mask is an engine invariant, not producer discipline:
                    # in a side-aware collection same-side pairs are dropped
                    # before any filter sees them, whatever the candidate stage
                    # emitted.
                    sides = self.backend.sides
                    if sides is not None:
                        cross = sides[firsts] != sides[seconds]
                        firsts, seconds = firsts[cross], seconds[cross]
                        if firsts.size == 0:
                            continue
                    firsts, seconds = filter_stage.filter_pairs(firsts, seconds)
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown candidate task {task!r}")
                if firsts.size:
                    surviving_firsts.append(firsts)
                    surviving_seconds.append(seconds)
            if surviving_firsts:
                firsts = np.concatenate(surviving_firsts)
                seconds = np.concatenate(surviving_seconds)
            else:
                firsts = seconds = np.zeros(0, dtype=np.intp)
            stats.candidates += int(firsts.size)
            stats.verified += int(firsts.size)
            stats.filter_seconds += time.perf_counter() - started
            if filter_span.enabled:
                filter_span.annotate(survivors=int(firsts.size))
                event("engine.dedup", seen_candidates=dedup.seen_candidates)

        started = time.perf_counter()
        with span("engine.verify", candidates=int(firsts.size)):
            if firsts.size:
                mask = self.verify_stage.verify(firsts, seconds)
                dedup.accept(firsts, seconds, mask)
        stats.verify_seconds += time.perf_counter() - started
