"""Shared staged execution pipeline for every join algorithm.

Historically CPSJOIN, MinHash LSH and BayesLSH each hand-rolled their own
candidate → filter → verify driver.  This package decomposes every algorithm
into four explicit stages driven by one :class:`JoinEngine`:

``CandidateStage`` → ``DedupStage`` → ``SketchFilterStage`` → ``VerifyStage``

The engine owns seeding, statistics accounting (including the per-stage
timing split reported in :class:`repro.result.JoinStats`), R ⋈ S
side-masking, and memory-bounded batch execution; the algorithms shrink to
candidate-stage definitions living next to their policy code.  The
:class:`repro.index.SimilarityIndex` builds its build-once/query-many path
on the same stage kernels.
"""

from repro.engine.engine import JoinEngine
from repro.engine.stages import (
    CandidateStage,
    DedupStage,
    PairCandidates,
    PointCandidates,
    SketchFilterStage,
    SubsetCandidates,
    Task,
    VerifyStage,
)

__all__ = [
    "JoinEngine",
    "CandidateStage",
    "DedupStage",
    "PairCandidates",
    "PointCandidates",
    "SketchFilterStage",
    "SubsetCandidates",
    "Task",
    "VerifyStage",
]
