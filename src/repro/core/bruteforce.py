"""Brute-force subroutines of CPSJOIN (Algorithm 2).

Three pieces live here, shared by the CPSJOIN engine and the MinHash LSH
baseline:

* ``BruteForcer.pairs`` — BRUTEFORCEPAIRS: compare all pairs within a
  subproblem, reporting those meeting the threshold.
* ``BruteForcer.point`` — BRUTEFORCEPOINT: compare one record against every
  record of a subproblem.
* ``BruteForcer.average_similarities`` — the estimate of each record's average
  similarity to the rest of the subproblem that drives the adaptive recursion
  rule (equation IV-C1), either via exact token counting (Algorithm 2) or via
  the sampled 1-bit sketch estimator the paper's implementation uses
  (Section V-A.4).

All candidate pairs go through the same two-stage check the paper describes:
a size-compatibility probe and the 1-bit minwise sketch estimate with cut-off
``λ̂`` (chosen for false-negative probability ``δ``); survivors are verified
exactly on the original token sets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.preprocess import PreprocessedCollection
from repro.hashing.sketch import popcount_rows, sketch_similarity_threshold
from repro.result import JoinStats, canonical_pair
from repro.similarity.verify import verify_pair_sorted

__all__ = ["BruteForcer"]


class BruteForcer:
    """Candidate generation and verification kernel over a preprocessed collection.

    Parameters
    ----------
    collection:
        The preprocessed records (token sets, signatures, sketches).
    threshold:
        Jaccard threshold ``λ``.
    stats:
        Statistics object updated in place (pre-candidates / candidates /
        verified counts).
    use_sketches:
        When False the sketch filter is skipped (ablation A2): every
        size-compatible pre-candidate is verified exactly.
    sketch_false_negative_rate:
        ``δ`` — used to derive the sketch estimate cut-off ``λ̂``.
    rng:
        Randomness used only for the sampled average-similarity estimator.
    """

    def __init__(
        self,
        collection: PreprocessedCollection,
        threshold: float,
        stats: JoinStats,
        use_sketches: bool = True,
        sketch_false_negative_rate: float = 0.05,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.collection = collection
        self.threshold = threshold
        self.stats = stats
        self.use_sketches = use_sketches
        self.rng = rng if rng is not None else np.random.default_rng()
        self.sketch_cutoff = sketch_similarity_threshold(
            threshold, collection.sketches.num_bits, sketch_false_negative_rate
        )
        self._sizes = collection.record_sizes()

    # ------------------------------------------------------------------ pair reporting
    def pairs(self, subset: Sequence[int], output: Set[Tuple[int, int]]) -> None:
        """BRUTEFORCEPAIRS: report all pairs within ``subset`` meeting the threshold."""
        subset = list(subset)
        for position, record_id in enumerate(subset):
            rest = subset[position + 1 :]
            if rest:
                self._compare_one_to_many(record_id, rest, output)

    def point(self, subset: Sequence[int], record_id: int, output: Set[Tuple[int, int]]) -> None:
        """BRUTEFORCEPOINT: report all pairs between ``record_id`` and ``subset``."""
        others = [other for other in subset if other != record_id]
        if others:
            self._compare_one_to_many(record_id, others, output)

    def _compare_one_to_many(
        self, record_id: int, others: List[int], output: Set[Tuple[int, int]]
    ) -> None:
        """Compare one record against many: size probe, sketch filter, exact verify."""
        self.stats.pre_candidates += len(others)
        others_array = np.asarray(others, dtype=np.intp)

        # Size-compatibility probe: J(x, y) >= λ forces λ <= |y|/|x| <= 1/λ.
        size_x = self._sizes[record_id]
        other_sizes = self._sizes[others_array]
        size_ok = (other_sizes >= self.threshold * size_x) & (size_x >= self.threshold * other_sizes)

        if self.use_sketches:
            estimates = self._estimate_many(record_id, others_array)
            passing = size_ok & (estimates >= self.sketch_cutoff)
        else:
            passing = size_ok

        record = self.collection.records[record_id]
        for other_id in others_array[passing]:
            other_id = int(other_id)
            self.stats.candidates += 1
            self.stats.verified += 1
            accepted, _ = verify_pair_sorted(record, self.collection.records[other_id], self.threshold)
            if accepted:
                output.add(canonical_pair(record_id, other_id))

    def _estimate_many(self, record_id: int, others: np.ndarray) -> np.ndarray:
        """Sketch-estimated Jaccard similarity of one record against many."""
        sketches = self.collection.sketches
        distances = popcount_rows(sketches.words[others] ^ sketches.words[record_id])
        return 1.0 - 2.0 * distances / sketches.num_bits

    # ------------------------------------------------------------------ average similarity
    def average_similarities(
        self, subset: Sequence[int], method: str = "sketches", sample_size: int = 64
    ) -> np.ndarray:
        """Estimated average similarity of each record in ``subset`` to the others.

        ``method="tokens"`` implements the exact rule of Algorithm 2 on the
        embedded token sets: with ``count[j]`` the number of records in the
        subproblem containing embedded token ``j``, the average Braun–Blanquet
        similarity of ``x`` to the rest is
        ``(1/(|S|-1)) Σ_{j ∈ f(x)} (count[j] - 1) / t``.

        ``method="sketches"`` is the paper's fast variant (Section V-A.4):
        the average is estimated against a random sample of the subproblem
        using the 1-bit sketches, at cost ``O(ℓ · sample)`` per record.
        """
        subset = list(subset)
        if len(subset) < 2:
            return np.zeros(len(subset))
        if method == "tokens":
            return self._average_similarity_exact(subset)
        if method == "sketches":
            return self._average_similarity_sampled(subset, sample_size)
        raise ValueError(f"unknown average method: {method!r}")

    def _average_similarity_exact(self, subset: List[int]) -> np.ndarray:
        """Exact average Braun–Blanquet similarity on the embedded sets (Algorithm 2)."""
        signatures = self.collection.signatures.matrix
        subset_array = np.asarray(subset, dtype=np.intp)
        sub_signatures = signatures[subset_array]  # (|S|, t)
        num_records, num_functions = sub_signatures.shape

        averages = np.zeros(num_records)
        # count[(i, value)] is computed column by column: within coordinate i,
        # records sharing the same MinHash value share the embedded token.
        for coordinate in range(num_functions):
            column = sub_signatures[:, coordinate]
            unique_values, inverse, counts = np.unique(column, return_inverse=True, return_counts=True)
            averages += (counts[inverse] - 1) / num_functions
        return averages / (num_records - 1)

    def _average_similarity_sampled(self, subset: List[int], sample_size: int) -> np.ndarray:
        """Sampled sketch estimate of the average similarity (Section V-A.4)."""
        sketches = self.collection.sketches
        subset_array = np.asarray(subset, dtype=np.intp)
        sample_count = min(sample_size, len(subset))
        sample = self.rng.choice(subset_array, size=sample_count, replace=False)

        subset_words = sketches.words[subset_array]  # (|S|, ℓ)
        sample_words = sketches.words[sample]  # (m, ℓ)
        # XOR every subset sketch against every sampled sketch and popcount.
        xored = subset_words[:, np.newaxis, :] ^ sample_words[np.newaxis, :, :]
        flat = xored.reshape(len(subset) * sample_count, sketches.num_words)
        distances = popcount_rows(flat).reshape(len(subset), sample_count)
        estimates = 1.0 - 2.0 * distances / sketches.num_bits

        # A record may appear in its own sample; correct the mean by removing
        # the (similarity = 1) self term where present.
        sample_set = {int(record_id) for record_id in sample}
        averages = estimates.mean(axis=1)
        for position, record_id in enumerate(subset):
            if int(record_id) in sample_set and sample_count > 1:
                averages[position] = (averages[position] * sample_count - 1.0) / (sample_count - 1)
        return averages
