"""Brute-force subroutines of CPSJOIN (Algorithm 2).

Three pieces live here, shared by the CPSJOIN engine and the MinHash LSH
baseline:

* ``BruteForcer.pairs`` — BRUTEFORCEPAIRS: compare all pairs within a
  subproblem, reporting those meeting the threshold.
* ``BruteForcer.point`` — BRUTEFORCEPOINT: compare one record against every
  record of a subproblem.
* ``BruteForcer.average_similarities`` — the estimate of each record's average
  similarity to the rest of the subproblem that drives the adaptive recursion
  rule (equation IV-C1), either via exact token counting (Algorithm 2) or via
  the sampled 1-bit sketch estimator the paper's implementation uses
  (Section V-A.4).

All candidate pairs go through the same two-stage check the paper describes:
a size-compatibility probe and the 1-bit minwise sketch estimate with cut-off
``λ̂`` (chosen for false-negative probability ``δ``); survivors are verified
exactly on the original token sets.

The arithmetic itself is delegated to a pluggable execution backend
(:mod:`repro.backend`): the ``"python"`` backend verifies survivors one pair
at a time (the reference semantics), the ``"numpy"`` backend verifies whole
candidate blocks with vectorized kernels.  The two are exactly equivalent;
``BruteForcer`` only owns the policy (which subsets to compare) and the
statistics bookkeeping.

When the preprocessed collection carries per-record side labels (an R ⋈ S
join, see :func:`repro.core.preprocess.preprocess_collection`), the backends
make ``pairs`` and ``point`` side-aware: same-side pairs are skipped before
any counting, so the statistics only reflect cross-side work.  The
:meth:`BruteForcer.average_similarities` estimate intentionally stays
side-blind — it only steers *when* the recursion brute-forces, so keeping it
identical to the self-join makes the R ⋈ S recursion (and its randomness
consumption) match a union self-join at the same seed exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.preprocess import PreprocessedCollection
from repro.hashing.sketch import sketch_similarity_threshold
from repro.result import JoinStats, canonical_pair

__all__ = ["BruteForcer"]


class BruteForcer:
    """Candidate generation and verification kernel over a preprocessed collection.

    Parameters
    ----------
    collection:
        The preprocessed records (token sets, signatures, sketches).
    threshold:
        Jaccard threshold ``λ``.
    stats:
        Statistics object updated in place (pre-candidates / candidates /
        verified counts).
    use_sketches:
        When False the sketch filter is skipped (ablation A2): every
        size-compatible pre-candidate is verified exactly.
    sketch_false_negative_rate:
        ``δ`` — used to derive the sketch estimate cut-off ``λ̂``.
    rng:
        Randomness used only for the sampled average-similarity estimator.
    backend:
        Execution backend: a name (``"python"`` / ``"numpy"``) or an already
        constructed :class:`repro.backend.ExecutionBackend` instance.
    """

    def __init__(
        self,
        collection: PreprocessedCollection,
        threshold: float,
        stats: JoinStats,
        use_sketches: bool = True,
        sketch_false_negative_rate: float = 0.05,
        rng: Optional[np.random.Generator] = None,
        backend: Union[str, "object", None] = None,
    ) -> None:
        from repro.backend import make_backend

        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.collection = collection
        self.threshold = threshold
        self.stats = stats
        self.use_sketches = use_sketches
        self.rng = rng if rng is not None else np.random.default_rng()
        self.sketch_cutoff = sketch_similarity_threshold(
            threshold, collection.sketches.num_bits, sketch_false_negative_rate
        )
        self.backend = make_backend(backend, collection, threshold)

    # ------------------------------------------------------------------ pair reporting
    def pairs(self, subset: Sequence[int], output: Set[Tuple[int, int]]) -> None:
        """BRUTEFORCEPAIRS: report all pairs within ``subset`` meeting the threshold."""
        pre_candidates, verified, accepted = self.backend.all_pairs(
            subset, self.use_sketches, self.sketch_cutoff
        )
        self.stats.pre_candidates += pre_candidates
        self.stats.candidates += verified
        self.stats.verified += verified
        output |= accepted

    def point(self, subset: Sequence[int], record_id: int, output: Set[Tuple[int, int]]) -> None:
        """BRUTEFORCEPOINT: report all pairs between ``record_id`` and ``subset``."""
        others = [other for other in subset if other != record_id]
        if not others:
            return
        pre_candidates, verified, accepted_ids = self.backend.one_to_many(
            record_id, np.asarray(others, dtype=np.intp), self.use_sketches, self.sketch_cutoff
        )
        self.stats.pre_candidates += pre_candidates
        self.stats.candidates += verified
        self.stats.verified += verified
        for other_id in accepted_ids:
            output.add(canonical_pair(record_id, other_id))

    # ------------------------------------------------------------------ average similarity
    def average_similarities(
        self,
        subset: Sequence[int],
        method: str = "sketches",
        sample_size: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Estimated average similarity of each record in ``subset`` to the others.

        ``method="tokens"`` implements the exact rule of Algorithm 2 on the
        embedded token sets: with ``count[j]`` the number of records in the
        subproblem containing embedded token ``j``, the average Braun–Blanquet
        similarity of ``x`` to the rest is
        ``(1/(|S|-1)) Σ_{j ∈ f(x)} (count[j] - 1) / t``.

        ``method="sketches"`` is the paper's fast variant (Section V-A.4):
        the average is estimated against a random sample of the subproblem
        using the 1-bit sketches, at cost ``O(ℓ · sample)`` per record.

        ``rng`` overrides the sampling generator for one call; the CPSJOIN
        candidate stage passes a per-node generator here so the estimate at a
        tree node is a pure function of the node's identity, independent of
        the order the walk visits nodes in.
        """
        subset = np.asarray(subset, dtype=np.intp)
        if subset.size < 2:
            return np.zeros(subset.size)
        if method == "tokens":
            return self.backend.average_similarity_exact(subset)
        if method == "sketches":
            return self.backend.average_similarity_sampled(
                subset, sample_size, self.rng if rng is None else rng
            )
        raise ValueError(f"unknown average method: {method!r}")
