"""The CPSJOIN algorithm (Algorithms 1 and 2 of the paper).

The engine performs one randomized run of the Chosen Path Similarity Join on
a preprocessed collection.  A run recursively splits the collection along the
Chosen Path Tree:

* **BRUTEFORCE step** (Algorithm 2): subproblems of at most ``limit`` records
  are solved by all-pairs comparison; in larger subproblems every record whose
  estimated average similarity to the rest exceeds ``(1 - ε) λ`` is compared
  against the whole subproblem and removed (the adaptive stopping rule that
  distinguishes CPSJOIN from classic LSH approaches).
* **Splitting step** (Algorithm 1): the surviving records are split into
  buckets.  Following the implementation heuristic of Section V-A.3, instead
  of hashing every token the engine samples an expected ``1/λ`` coordinates of
  the MinHash embedding and groups records by their MinHash value on each
  sampled coordinate; each non-trivial bucket becomes a recursive subproblem.

Execution is staged through the shared :class:`repro.engine.JoinEngine`: the
recursion here is only the **candidate stage** — it decides *which* subsets
get brute-forced and yields them as tasks
(:class:`~repro.engine.stages.SubsetCandidates` /
:class:`~repro.engine.stages.PointCandidates`); the engine runs the dedup,
sketch-filter and verify stages in memory-bounded batches.  Verification
never feeds back into the recursion and consumes no randomness, so the
staged run is bit-for-bit identical to the historical fused loop.

The tree walk itself comes in two interchangeable implementations selected
by ``config.candidate_walk``: the scalar depth-first recursion in this
module (the readable reference) and the level-synchronous array frontier of
:mod:`repro.core.frontier` (the fast path, default on the numpy backend).
Node randomness is seeded *per node* — one entropy draw per repetition, then
counter-based node keys along the tree edges and path-seeded estimator
generators (see the frontier module docstring) — so both walks emit the
identical task stream at any seed.

For the ablation of Section IV-C.5 the stage also implements the ``global``
and ``individual`` stopping strategies, which replace the adaptive rule with a
fixed recursion depth (one global depth, or one depth per record estimated
from its average similarity to the collection).

A single run reports every qualifying pair with probability ``Ω(ε/log n)``
(Lemma 6); the :mod:`repro.core.repetition` driver runs the engine several
times (ten by default, as in the paper's experiments) to reach the target
recall.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.bruteforce import BruteForcer
from repro.core.config import CPSJoinConfig
from repro.core.frontier import (
    child_node_keys,
    chosen_split_coordinates,
    estimator_rng,
    frontier_tasks,
    resolve_candidate_walk,
    root_node_key,
)
from repro.core.preprocess import PreprocessedCollection, preprocess_collection
from repro.engine import CandidateStage, JoinEngine, PointCandidates, SubsetCandidates, Task
from repro.result import JoinResult, JoinStats, Timer
from repro.similarity.measures import get_measure

__all__ = ["CPSJoin", "ChosenPathCandidateStage", "cpsjoin"]

_SEED_STREAM = 7919
"""Odd multiplier deriving per-repetition seeds (kept from the seed impl)."""


class ChosenPathCandidateStage(CandidateStage):
    """Candidate stage of CPSJOIN: the Chosen Path Tree walk.

    The repetition generator is consumed exactly once — for the walk's
    ``root_entropy`` — and every node's randomness (split coordinates,
    estimator samples) is derived from the node's identity (see
    :mod:`repro.core.frontier`).  ``config.candidate_walk`` picks the
    traversal: the scalar depth-first recursion implemented here, or the
    level-synchronous array frontier; both yield the identical task stream.
    """

    def __init__(
        self,
        join: "CPSJoin",
        collection: PreprocessedCollection,
        engine: JoinEngine,
        rng: np.random.Generator,
        stats: JoinStats,
    ) -> None:
        self.join = join
        self.collection = collection
        self.rng = rng
        self.stats = stats
        self.root_entropy = 0
        # The estimator drives the adaptive rule; it shares the engine's
        # backend instance so token packing happens once per collection.
        self.estimator = BruteForcer(
            collection,
            join.embedded_threshold,
            stats,
            use_sketches=join.config.use_sketches,
            sketch_false_negative_rate=join.config.sketch_false_negative_rate,
            rng=rng,
            backend=engine.backend,
        )

    # ------------------------------------------------------------------ entry
    def tasks(self) -> Iterator[Task]:
        config = self.join.config
        # The single draw that fixes the whole tree's randomness: node keys
        # and estimator streams are pure functions of (root_entropy, path).
        self.root_entropy = int(self.rng.integers(0, 1 << 63))
        walk = resolve_candidate_walk(config.candidate_walk, self.estimator.backend.name)
        if walk == "frontier":
            yield from frontier_tasks(self)
            return
        all_records = list(range(self.collection.num_records))
        root_key = root_node_key(self.root_entropy)
        if config.stopping == "adaptive":
            yield from self._adaptive(all_records, 0, root_key)
        elif config.stopping == "global":
            depth = self.join._global_depth(self.collection.num_records)
            yield from self._fixed_depth(all_records, 0, depth, root_key)
        else:  # individual
            depth_values = self.join._individual_depths(all_records, self.estimator)
            depths = {record_id: int(depth) for record_id, depth in zip(all_records, depth_values)}
            yield from self._individual(all_records, 0, depths, root_key)

    # ------------------------------------------------------------------ node bookkeeping
    def _enter_node(self, depth: int) -> None:
        self.stats.add_extra("tree_nodes")
        self.stats.max_extra("max_depth", float(depth))

    def _children(self, subset: List[int], node_key: int) -> Iterator[tuple]:
        """Buckets of a node paired with their child node keys, in rank order."""
        buckets = self.join._split(subset, self.collection, node_key)
        if not buckets:
            return
        keys = child_node_keys(
            np.full(len(buckets), node_key, dtype=np.uint64), np.arange(len(buckets))
        )
        for rank, bucket in enumerate(buckets):
            yield rank, bucket, int(keys[rank])

    # ------------------------------------------------------------------ adaptive strategy (the paper's)
    def _adaptive(self, subset: List[int], depth: int, node_key: int) -> Iterator[Task]:
        """One node of the Chosen Path Tree under the adaptive stopping rule."""
        self._enter_node(depth)
        subset = yield from self._brute_force_step(subset, node_key)
        if len(subset) < 2:
            return
        if depth >= self.join.config.max_depth:
            # Safety net: the analysis bounds the depth by O(log n / ε) w.h.p.;
            # finish any unexpectedly deep branch exactly.
            yield SubsetCandidates(tuple(subset))
            return
        for _rank, bucket, child_key in self._children(subset, node_key):
            yield from self._adaptive(bucket, depth + 1, child_key)

    def _brute_force_step(self, subset: List[int], node_key: int) -> Iterator[Task]:
        """The BRUTEFORCE step (Algorithm 2): returns the records that keep branching.

        Small subproblems are finished exactly (returning an empty list stops
        the recursion).  In larger subproblems every record whose estimated
        average similarity to the rest exceeds ``(1 - ε) λ`` is compared to the
        whole subproblem and removed.  As in the paper's implementation the
        check is evaluated once per node for all records rather than re-running
        after each removal.
        """
        join = self.join
        stats = self.stats
        if len(subset) <= join.config.limit:
            yield SubsetCandidates(tuple(subset))
            stats.add_extra("bruteforce_pairs_calls")
            return []

        averages = self.estimator.average_similarities(
            subset,
            method=join.config.average_method,
            rng=estimator_rng(node_key),
        )
        # The estimates live in embedded-Jaccard space, so the adaptive rule
        # compares against the embedded threshold (identical to λ for the
        # default measure).
        cutoff = (1.0 - join.config.epsilon) * join.embedded_threshold
        to_remove = [record_id for record_id, average in zip(subset, averages) if average > cutoff]
        if to_remove:
            stats.add_extra("bruteforce_point_calls", float(len(to_remove)))
            removed_set = set(to_remove)
            for record_id in to_remove:
                others = tuple(other for other in subset if other != record_id)
                if others:
                    yield PointCandidates(record_id, others)
            subset = [record_id for record_id in subset if record_id not in removed_set]
            # Removing records may push the subproblem below the brute-force
            # limit; Algorithm 2 re-runs itself on the reduced set.
            if len(subset) <= join.config.limit:
                yield SubsetCandidates(tuple(subset))
                stats.add_extra("bruteforce_pairs_calls")
                return []
        return subset

    # ------------------------------------------------------------------ ablation strategies
    def _fixed_depth(
        self, subset: List[int], depth: int, stop_depth: int, node_key: int
    ) -> Iterator[Task]:
        """Classic LSH-style recursion: split until a fixed depth, then brute force."""
        self._enter_node(depth)
        if len(subset) < 2:
            return
        if depth >= stop_depth or len(subset) <= self.join.config.limit:
            yield SubsetCandidates(tuple(subset))
            return
        for _rank, bucket, child_key in self._children(subset, node_key):
            yield from self._fixed_depth(bucket, depth + 1, stop_depth, child_key)

    def _individual(
        self, subset: List[int], depth: int, depths: Dict[int, int], node_key: int
    ) -> Iterator[Task]:
        """Per-record fixed-depth recursion (the ``individual`` strategy)."""
        self._enter_node(depth)
        if len(subset) < 2:
            return
        if len(subset) <= self.join.config.limit or depth >= self.join.config.max_depth:
            yield SubsetCandidates(tuple(subset))
            return
        # Records whose individual depth has been reached are brute-forced
        # against the subproblem and removed before splitting.
        expiring = [record_id for record_id in subset if depths.get(record_id, 0) <= depth]
        if expiring:
            for record_id in expiring:
                others = tuple(other for other in subset if other != record_id)
                if others:
                    yield PointCandidates(record_id, others)
            expiring_set = set(expiring)
            subset = [record_id for record_id in subset if record_id not in expiring_set]
            if len(subset) < 2:
                return
        for _rank, bucket, child_key in self._children(subset, node_key):
            yield from self._individual(bucket, depth + 1, depths, child_key)


class CPSJoin:
    """Chosen Path Similarity Join engine.

    Parameters
    ----------
    threshold:
        Similarity threshold ``λ`` in ``(0, 1)``, on the configured measure's
        own scale.
    config:
        Algorithm parameters; see :class:`repro.core.config.CPSJoinConfig`.

    Notes
    -----
    With a non-Jaccard measure the randomized machinery (the Chosen Path
    recursion, the adaptive rule's similarity estimates, the sketch filter)
    runs at the *embedded* threshold — the measure's Jaccard floor of ``λ``,
    the smallest Jaccard any qualifying pair can have — while exact
    verification scores candidates with the real measure at ``λ``.  Measures
    whose floor is zero (overlap coefficient, containment) give the
    recursion nothing to recurse on and are rejected; use the exact join
    algorithms for those.
    """

    algorithm_name = "CPSJOIN"

    def __init__(self, threshold: float, config: Optional[CPSJoinConfig] = None) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold
        self.config = config if config is not None else CPSJoinConfig()
        self.measure = get_measure(self.config.measure)
        self.embedded_threshold = self.measure.jaccard_floor(threshold)
        if self.embedded_threshold <= 0.0:
            raise ValueError(
                f"measure {self.measure.name!r} has no positive Jaccard floor at "
                f"threshold {threshold}; CPSJOIN cannot bound its recursion — use "
                "an exact algorithm (allpairs / ppjoin) for this measure"
            )

    # ------------------------------------------------------------------ public API
    def join(
        self,
        records: Sequence[Sequence[int]],
        sides: Optional[Sequence[int]] = None,
    ) -> JoinResult:
        """Preprocess ``records`` and run the configured number of repetitions.

        ``sides`` (0 = R, 1 = S, one entry per record) turns the run into a
        native R ⋈ S join: the recursion is unchanged, but the engine's
        filter stage skips same-side comparisons entirely, so only cross-side
        pairs are counted, verified, and reported.
        """
        collection = preprocess_collection(
            records,
            embedding_size=self.config.embedding_size,
            sketch_words=self.config.sketch_words,
            seed=self.config.seed,
            sides=sides,
        )
        return self.join_preprocessed(collection)

    def join_preprocessed(self, collection: PreprocessedCollection) -> JoinResult:
        """Run the configured number of repetitions on a preprocessed collection.

        Repetitions are dispatched through the repetition engine, which honours
        ``config.workers`` and ``config.executor`` (parallel execution with
        deterministic merging — thread or shared-memory process workers) and
        reports wall-clock vs summed worker time separately.
        """
        from repro.core.repetition import RepetitionEngine

        engine = RepetitionEngine(
            self, collection, workers=self.config.workers, executor=self.config.executor
        )
        return engine.run_fixed(self.config.repetitions)

    def run_once(self, collection: PreprocessedCollection, repetition: int = 0) -> JoinResult:
        """Run a single repetition of CPSJOIN through the staged join engine."""
        rng = JoinEngine.repetition_rng(self.config.seed, repetition, stream=_SEED_STREAM)
        stats = JoinStats(
            algorithm=self.algorithm_name,
            threshold=self.threshold,
            num_records=collection.num_records,
            repetitions=1,
        )
        engine = JoinEngine(
            collection,
            self.threshold,
            backend=self.config.backend,
            use_sketches=self.config.use_sketches,
            sketch_false_negative_rate=self.config.sketch_false_negative_rate,
            measure=self.measure,
        )
        stage = ChosenPathCandidateStage(self, collection, engine, rng, stats)
        with Timer() as timer:
            pairs = engine.execute(stage, stats)
        stats.results = len(pairs)
        stats.elapsed_seconds = timer.elapsed
        return JoinResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------ splitting step
    def _split(
        self,
        subset: List[int],
        collection: PreprocessedCollection,
        node_key: int,
    ) -> List[List[int]]:
        """Split a subproblem into buckets (Algorithm 1 with the Section V-A.3 heuristic).

        An expected ``1/λ`` coordinates of the embedding are sampled; for each
        sampled coordinate the subproblem is partitioned by MinHash value.
        Records sharing a bucket share the embedded token ``(i, h_i(x))``,
        exactly as if the splitting hash of Algorithm 1 had selected that
        token.  Buckets with fewer than two records cannot produce pairs and
        are dropped.

        The coordinate choice is a pure function of ``node_key`` (the node's
        deterministic identity, see :mod:`repro.core.frontier`), so the
        recursive and frontier walks split every node identically.
        """
        num_functions = collection.embedding_size
        # Each coordinate is chosen independently with probability 1/(λ t), so
        # the expected number of chosen coordinates is 1/λ (λ being the
        # embedded threshold — the MinHash values estimate embedded Jaccard).
        probability = min(1.0, 1.0 / (self.embedded_threshold * num_functions))
        chosen = chosen_split_coordinates(node_key, num_functions, probability)

        subset_array = np.asarray(subset, dtype=np.intp)
        buckets: List[List[int]] = []
        for coordinate in chosen:
            values = collection.signatures.matrix[subset_array, coordinate]
            # Vectorized grouping equivalent to inserting into a dict in
            # subset order: the stable argsort keeps records in subset order
            # within each bucket, and buckets are emitted by first occurrence
            # so the recursion (and its randomness consumption) matches the
            # reference implementation exactly.
            unique_values, inverse, counts = np.unique(
                values, return_inverse=True, return_counts=True
            )
            order = np.argsort(inverse, kind="stable")
            ends = np.cumsum(counts)
            starts = ends - counts
            for group_index in np.argsort(order[starts], kind="stable"):
                if counts[group_index] >= 2:
                    members = subset_array[order[starts[group_index] : ends[group_index]]]
                    buckets.append(members.tolist())
        return buckets

    # ------------------------------------------------------------------ ablation helpers
    def _global_depth(self, num_records: int) -> int:
        """Fixed tree depth for the ``global`` stopping strategy.

        When not supplied explicitly the depth is set to
        ``⌈ln(n) / ln(1/λ)⌉`` — the depth at which the expected number of
        tree vertices containing a record, ``(1/λ)^k``, reaches ``n`` and
        further splitting can no longer pay off.
        """
        if self.config.global_depth is not None:
            return self.config.global_depth
        return max(
            1, math.ceil(math.log(max(2, num_records)) / math.log(1.0 / self.embedded_threshold))
        )

    def _individual_depths(self, subset: List[int], brute_forcer: BruteForcer) -> np.ndarray:
        """Per-record stopping depths for the ``individual`` strategy.

        Following the running-time expression of Section IV-C.5 the depth for
        record ``x`` is chosen to balance ``(1/λ)^k`` against
        ``Σ_y (sim(x, y)/λ)^k``; a record whose average similarity to the
        collection is ``s`` gets depth ``k_x ≈ ln(n) / ln(λ/s)`` when
        ``s < λ`` (records with ``s ≥ λ`` get depth 0, i.e. immediate brute
        force, which matches the adaptive rule's behaviour for such records).
        """
        averages = brute_forcer.average_similarities(subset, method=self.config.average_method)
        num_records = max(2, len(subset))
        threshold = self.embedded_threshold
        averages = np.asarray(averages, dtype=np.float64)
        at_threshold = averages >= threshold
        clamped = np.maximum(averages, 1e-6)
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = np.ceil(math.log(num_records) / np.log(threshold / clamped))
        # Records at least as similar as the threshold get depth 0: immediate
        # brute force, matching the adaptive rule's behaviour for them.  (They
        # are masked before the cast: their ``raw`` value may be NaN/-inf.)
        raw = np.where(at_threshold, 0.0, np.maximum(raw, 1.0))
        return raw.astype(np.int64)

    def run_once_individual(self, collection: PreprocessedCollection, repetition: int = 0) -> JoinResult:
        """Convenience entry point used by the stopping-strategy ablation."""
        engine = CPSJoin(self.threshold, self.config.with_overrides(stopping="individual"))
        return engine.run_once(collection, repetition=repetition)


def cpsjoin(
    records: Sequence[Sequence[int]],
    threshold: float,
    config: Optional[CPSJoinConfig] = None,
) -> JoinResult:
    """Run CPSJOIN on a record collection (functional convenience wrapper)."""
    return CPSJoin(threshold, config).join(records)
