"""Configuration of the CPSJOIN algorithm.

The parameters and their defaults follow Table III of the paper ("final"
column), plus a few switches used only by the ablation experiments (stopping
strategy, sketch usage, exact vs sketch-sampled average-similarity estimate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.similarity.measures import Measure, get_measure

__all__ = ["CPSJoinConfig"]

_VALID_STOPPING = ("adaptive", "global", "individual")
_VALID_AVERAGE_METHODS = ("sketches", "tokens")
_VALID_BACKENDS = ("python", "numpy")
_VALID_EXECUTORS = ("serial", "threads", "processes")
_VALID_CANDIDATE_WALKS = ("auto", "recursive", "frontier")


@dataclass(frozen=True)
class CPSJoinConfig:
    """Parameters of the CPSJOIN algorithm.

    Attributes
    ----------
    limit:
        Brute-force size limit: subproblems of at most this many records are
        solved by all-pairs brute force (paper default 250, Figure 3a).
    epsilon:
        Brute-force aggressiveness ``ε``: a record whose estimated average
        similarity to its subproblem exceeds ``(1 - ε) λ`` is brute-forced
        and removed (paper default 0.1, Figure 3b).
    embedding_size:
        Size ``t`` of the MinHash embedding of Section II-A (paper: 128).
    sketch_words:
        Length ``ℓ`` of the 1-bit minwise sketches in 64-bit words
        (paper default 8, Figure 3c).
    sketch_false_negative_rate:
        ``δ``: the probability that a true positive is filtered out by the
        sketch check (paper default 0.05); determines the estimator cut-off λ̂.
    repetitions:
        Number of independent repetitions of the algorithm (paper: 10, which
        empirically achieves ≥ 90% recall across all datasets).
    stopping:
        Stopping strategy: ``"adaptive"`` (the paper's contribution),
        ``"global"`` (classic LSH-style fixed depth) or ``"individual"``
        (per-record fixed depth) — the latter two exist for the Section
        IV-C.5 ablation.
    global_depth:
        Tree depth used by the ``"global"`` strategy (ignored otherwise); when
        ``None`` a depth is estimated from the threshold.
    use_sketches:
        When False, candidate pairs skip the 1-bit sketch filter and go
        straight to exact verification (ablation A2).
    average_method:
        How the BRUTEFORCE step estimates a record's average similarity to its
        subproblem: ``"sketches"`` (the sampled sketch estimator of Section
        V-A.4, default) or ``"tokens"`` (the exact token-count rule of
        Algorithm 2).
    max_depth:
        Hard cap on the recursion depth (safety net; the analysis bounds the
        depth by ``O(log n / ε)`` with high probability).
    seed:
        Seed controlling the embedding, the sketches, and the splitting
        randomness.  Repetition ``r`` uses ``seed + r``.
    backend:
        Execution backend for the verification hot paths: ``"python"``
        (per-pair reference semantics) or ``"numpy"`` (vectorized block
        verification).  Both return identical pair sets at seed parity.
    candidate_walk:
        How the Chosen Path tree is traversed by the candidate stage:
        ``"recursive"`` (the scalar depth-first reference),
        ``"frontier"`` (the level-synchronous array walk) or ``"auto"``
        (frontier on the numpy backend, recursive on python).  Node
        randomness is seeded per node, so both walks emit the identical task
        stream — and therefore the identical pair set — at any seed.
    workers:
        Number of parallel workers the repetition engine uses to run the
        independent repetitions (1 = sequential).  Results are deterministic
        for a fixed seed regardless of the worker count.
    executor:
        How parallel repetitions are dispatched: ``"serial"`` (in-process,
        ignores ``workers``), ``"threads"`` (default; cheap to start, but the
        GIL serializes pure-Python work) or ``"processes"`` (true multi-core:
        the preprocessed collection is placed in shared memory once and
        workers attach zero-copy).  The reported pair set is identical for
        every executor at a fixed seed.
    measure:
        Similarity measure the join verifies under: a registered name
        (``"jaccard"``, ``"cosine"``, ``"dice"``, ``"braun_blanquet"``, …), a
        :class:`~repro.similarity.measures.Measure` instance (possibly
        weighted), or ``None`` for plain Jaccard.  The randomized recursion
        runs at the measure's Jaccard floor of the threshold; measures with
        no positive floor (overlap coefficient, containment) cannot be
        served by CPSJOIN and are rejected at join time.
    """

    limit: int = 250
    epsilon: float = 0.1
    embedding_size: int = 128
    sketch_words: int = 8
    sketch_false_negative_rate: float = 0.05
    repetitions: int = 10
    stopping: str = "adaptive"
    global_depth: Optional[int] = None
    use_sketches: bool = True
    average_method: str = "sketches"
    max_depth: int = 64
    seed: Optional[int] = None
    backend: str = "python"
    candidate_walk: str = "auto"
    workers: int = 1
    executor: str = "threads"
    measure: Union[str, Measure, None] = None

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ValueError("limit must be at least 1")
        if self.epsilon < 0.0:
            raise ValueError("epsilon must be non-negative")
        if self.embedding_size < 1:
            raise ValueError("embedding_size must be positive")
        if self.sketch_words < 1:
            raise ValueError("sketch_words must be positive")
        if not 0.0 < self.sketch_false_negative_rate < 1.0:
            raise ValueError("sketch_false_negative_rate must be in (0, 1)")
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if self.stopping not in _VALID_STOPPING:
            raise ValueError(f"stopping must be one of {_VALID_STOPPING}")
        if self.average_method not in _VALID_AVERAGE_METHODS:
            raise ValueError(f"average_method must be one of {_VALID_AVERAGE_METHODS}")
        if self.max_depth < 1:
            raise ValueError("max_depth must be positive")
        if self.backend not in _VALID_BACKENDS:
            raise ValueError(f"backend must be one of {_VALID_BACKENDS}")
        if self.candidate_walk not in _VALID_CANDIDATE_WALKS:
            raise ValueError(f"candidate_walk must be one of {_VALID_CANDIDATE_WALKS}")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.executor not in _VALID_EXECUTORS:
            raise ValueError(f"executor must be one of {_VALID_EXECUTORS}")
        # Validate only (raises on unknown names); the field keeps the user's
        # value so frozen-dataclass replace()/equality semantics are unchanged.
        get_measure(self.measure)

    def with_seed(self, seed: Optional[int]) -> "CPSJoinConfig":
        """Return a copy of the configuration with a different seed."""
        return replace(self, seed=seed)

    def with_overrides(self, **overrides: object) -> "CPSJoinConfig":
        """Return a copy with arbitrary fields replaced (used by sweeps)."""
        return replace(self, **overrides)  # type: ignore[arg-type]
