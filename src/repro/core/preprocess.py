"""Preprocessing shared by CPSJOIN and the MinHash LSH baseline.

Section V-A.1 of the paper: before running the join, every record is mapped
to a length-``t`` MinHash signature (the embedding of Section II-A) and to a
1-bit minwise sketch of ``64 · ℓ`` bits.  The paper notes that this
preprocessing is reusable across joins with different thresholds and
therefore not counted in the reported join times; we follow the same
convention — :class:`PreprocessedCollection` is built once per dataset and
passed to the join engines, and its construction time is reported separately
in :class:`repro.result.JoinStats.preprocessing_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Record
from repro.hashing.minhash import MinHasher, MinHashSignatures
from repro.hashing.sketch import OneBitMinHashSketches, build_sketches
from repro.result import Timer

__all__ = ["PreprocessedCollection", "preprocess_collection"]


@dataclass
class PreprocessedCollection:
    """A collection of records plus the hashing artefacts the joins need.

    Attributes
    ----------
    records:
        The original records as sorted token tuples (used for exact
        verification).
    signatures:
        MinHash signatures of shape ``(n, t)``.
    sketches:
        Packed 1-bit minwise sketches of shape ``(n, ℓ)``.
    preprocessing_seconds:
        Wall-clock time spent building the signatures and sketches.
    """

    records: List[Record]
    signatures: MinHashSignatures
    sketches: OneBitMinHashSketches
    preprocessing_seconds: float

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def embedding_size(self) -> int:
        return self.signatures.num_functions

    def record_sizes(self) -> np.ndarray:
        """Sizes of all records as an int array (used by size filters)."""
        return np.array([len(record) for record in self.records], dtype=np.int64)


def preprocess_collection(
    records: Sequence[Sequence[int]],
    embedding_size: int = 128,
    sketch_words: int = 8,
    seed: Optional[int] = None,
) -> PreprocessedCollection:
    """Build MinHash signatures and 1-bit minwise sketches for a collection.

    Parameters
    ----------
    records:
        The collection; every record must be non-empty.
    embedding_size:
        Number of MinHash functions ``t``.
    sketch_words:
        Sketch length ``ℓ`` in 64-bit words.
    seed:
        Seed for all hash functions (signatures and sketches derive
        independent streams from it).
    """
    normalized: List[Record] = [tuple(sorted(set(int(token) for token in record))) for record in records]
    for index, record in enumerate(normalized):
        if not record:
            raise ValueError(f"record {index} is empty; empty records cannot be joined")

    with Timer() as timer:
        minhasher = MinHasher(num_functions=embedding_size, seed=seed)
        signatures = minhasher.signatures(normalized)
        sketch_seed = None if seed is None else seed + 0x5EED
        sketches = build_sketches(signatures.matrix, num_words=sketch_words, seed=sketch_seed)
    return PreprocessedCollection(
        records=normalized,
        signatures=signatures,
        sketches=sketches,
        preprocessing_seconds=timer.elapsed,
    )
