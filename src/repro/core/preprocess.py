"""Preprocessing shared by CPSJOIN and the MinHash LSH baseline.

Section V-A.1 of the paper: before running the join, every record is mapped
to a length-``t`` MinHash signature (the embedding of Section II-A) and to a
1-bit minwise sketch of ``64 · ℓ`` bits.  The paper notes that this
preprocessing is reusable across joins with different thresholds and
therefore not counted in the reported join times; we follow the same
convention — the artefacts are built once per dataset and passed to the join
engines, with construction time reported separately in
:class:`repro.result.JoinStats.preprocessing_seconds`.

Since the shared-memory refactor, the artefacts themselves live in a
:class:`repro.store.RecordStore` — flat numpy arrays (CSR token values and
offsets, the signature matrix, packed sketches, record sizes, optional
R ⋈ S side labels) that can be placed in a shared-memory segment and
attached zero-copy by worker processes.  :class:`PreprocessedCollection` is
a thin view over a store: it adds the lazily cached conveniences the scalar
code paths want (record tuples, big-integer sketches) but owns no data of
its own, so handing a collection to the process executor ships only the
store's tiny :class:`repro.store.StoreHandle` — never pickled record
objects.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Record
from repro.hashing.minhash import MinHashSignatures
from repro.hashing.sketch import OneBitMinHashSketches
from repro.store import RecordStore, SharedStoreLease
from repro.store.record_store import normalize_records, validate_sides

__all__ = ["PreprocessedCollection", "preprocess_collection"]


class PreprocessedCollection:
    """A collection of records plus the hashing artefacts the joins need.

    A thin view over a :class:`repro.store.RecordStore`: ``signatures``,
    ``sketches``, ``sides`` and the CSR token arrays are zero-copy views of
    the store's flat arrays, while ``records`` (Python tuples, used by the
    scalar reference backend and exact verification) and ``sketch_bigints``
    are materialized lazily and cached — at most once per process, never per
    repetition.

    Attributes
    ----------
    store:
        The backing :class:`repro.store.RecordStore` (possibly attached to a
        shared-memory segment inside a worker process).
    """

    def __init__(self, store: RecordStore, records: Optional[List[Record]] = None) -> None:
        self.store = store
        self._records = records
        self._signatures: Optional[MinHashSignatures] = None
        self._sketches: Optional[OneBitMinHashSketches] = None
        self._sketch_bigints: Optional[List[int]] = None
        self._sketch_bits: Optional[np.ndarray] = None
        self._sketch_bits_built = False
        self._signature_ranks: Optional[np.ndarray] = None

    @classmethod
    def from_store(cls, store: RecordStore) -> "PreprocessedCollection":
        """Wrap a store (typically one attached inside a worker process)."""
        return cls(store)

    # ------------------------------------------------------------------ store views
    @property
    def records(self) -> List[Record]:
        """The records as sorted token tuples (lazy view for the scalar paths).

        The vectorized backend never touches this — it reads the CSR arrays
        through :meth:`packed_tokens`.  The scalar reference backend (and the
        exact algorithms) get the tuples materialized from the CSR arrays on
        first access, cached for the life of the process.
        """
        if self._records is None:
            self._records = self.store.record_tuples()
        return self._records

    @property
    def signatures(self) -> MinHashSignatures:
        """MinHash signatures of shape ``(n, t)`` (view of the store matrix)."""
        if self._signatures is None:
            self._signatures = MinHashSignatures(matrix=self.store.signature_matrix)
        return self._signatures

    @property
    def sketches(self) -> OneBitMinHashSketches:
        """Packed 1-bit minwise sketches of shape ``(n, ℓ)`` (store view)."""
        if self._sketches is None:
            self._sketches = OneBitMinHashSketches(words=self.store.sketch_words)
        return self._sketches

    @property
    def sides(self) -> Optional[np.ndarray]:
        """Optional per-record R ⋈ S side labels (0 = R, 1 = S); None = self-join."""
        return self.store.sides

    @property
    def preprocessing_seconds(self) -> float:
        """Wall-clock time spent building the signatures and sketches."""
        return self.store.preprocessing_seconds

    @property
    def num_records(self) -> int:
        return self.store.num_records

    @property
    def embedding_size(self) -> int:
        return self.store.embedding_size

    def record_sizes(self) -> np.ndarray:
        """Sizes of all records as an int array (used by size filters)."""
        return self.store.sizes

    def packed_tokens(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-style packed token arrays ``(values, offsets)``.

        ``values`` concatenates every record's sorted tokens as ``int64``;
        record ``i`` occupies ``values[offsets[i]:offsets[i + 1]]``.  These
        are the store's own arrays — no packing happens here anymore, so the
        call is free in every process, including shared-memory workers.
        """
        return self.store.token_values, self.store.token_offsets

    def sketch_bigints(self) -> List[int]:
        """Each record's 1-bit sketch as one Python integer, built lazily.

        The scalar fast paths compare sketches with ``int.bit_count()`` on
        these arbitrary-precision integers instead of dispatching numpy calls
        on tiny arrays; cached per process.  Concurrent first calls from
        parallel repetition threads are a benign race: both compute the same
        list and the last assignment wins.
        """
        if self._sketch_bigints is None:
            words = np.ascontiguousarray(self.store.sketch_words)
            row_bytes = words.shape[1] * words.dtype.itemsize
            raw = words.tobytes()
            self._sketch_bigints = [
                int.from_bytes(raw[index * row_bytes : (index + 1) * row_bytes], "little")
                for index in range(words.shape[0])
            ]
        return self._sketch_bigints

    def signature_rank_matrix(self) -> np.ndarray:
        """Per-column dense ranks of the MinHash signature matrix, cached.

        ``ranks[x, i]`` is the rank of record ``x``'s MinHash value among the
        distinct values of coordinate ``i`` — equal ranks within a column iff
        equal MinHash values, so grouping by rank partitions a subproblem
        exactly like grouping by value.  The frontier candidate walk packs
        ``(node-slot, rank)`` into one small integer sort key per row, which
        is cheaper than lexsorting the raw 64-bit values; built once per
        collection (same benign first-call race as :meth:`sketch_bigints`).
        """
        if self._signature_ranks is None:
            matrix = self.signatures.matrix
            order = np.argsort(matrix, axis=0, kind="stable")
            sorted_values = np.take_along_axis(matrix, order, axis=0)
            new_group = np.ones_like(sorted_values, dtype=np.int64)
            new_group[1:] = sorted_values[1:] != sorted_values[:-1]
            dense = np.cumsum(new_group, axis=0) - 1
            ranks = np.empty(matrix.shape, dtype=np.int32)
            np.put_along_axis(ranks, order, dense.astype(np.int32), axis=0)
            self._signature_ranks = ranks
        return self._signature_ranks

    _SKETCH_BITS_BUDGET_BYTES = 1 << 27
    """Memory budget for the unpacked sketch-bit matrix (128 MB)."""

    def sketch_bit_matrix(self) -> Optional[np.ndarray]:
        """Sketch bits unpacked to a float32 ``(n, num_bits)`` matrix, cached.

        Backs the matvec form of the sampled average-similarity estimator
        (see :meth:`repro.backend.base.ExecutionBackend.average_similarity_sampled`).
        Cached here — not on the per-repetition backend — so all repetitions
        of a join share one unpacking pass.  Returns ``None`` for collections
        whose matrix would exceed the budget (callers fall back to the packed
        word loop); the benign concurrent-first-call race matches
        :meth:`sketch_bigints`.
        """
        if not self._sketch_bits_built:
            words = self.store.sketch_words
            num_bits = words.shape[1] * words.dtype.itemsize * 8
            if words.size and words.shape[0] * num_bits * 4 <= self._SKETCH_BITS_BUDGET_BYTES:
                self._sketch_bits = np.unpackbits(
                    np.ascontiguousarray(words).view(np.uint8), axis=1
                ).astype(np.float32)
            self._sketch_bits_built = True
        return self._sketch_bits

    # ------------------------------------------------------------------ shared memory
    def to_shared(self) -> SharedStoreLease:
        """Place the backing store in shared memory (see :meth:`RecordStore.to_shared`)."""
        return self.store.to_shared()


def preprocess_collection(
    records: Sequence[Sequence[int]],
    embedding_size: int = 128,
    sketch_words: int = 8,
    seed: Optional[int] = None,
    sides: Optional[Sequence[int]] = None,
) -> PreprocessedCollection:
    """Build MinHash signatures and 1-bit minwise sketches for a collection.

    Parameters
    ----------
    records:
        The collection; every record must be non-empty.
    embedding_size:
        Number of MinHash functions ``t``.
    sketch_words:
        Sketch length ``ℓ`` in 64-bit words.
    seed:
        Seed for all hash functions (signatures and sketches derive
        independent streams from it).
    sides:
        Optional per-record side labels (0 = R, 1 = S) for R ⋈ S joins; must
        have one entry per record.  ``None`` means a plain self-join.
    """
    normalized = normalize_records(records)
    side_array = validate_sides(sides, len(normalized))
    store = RecordStore.from_records(
        normalized,
        embedding_size=embedding_size,
        sketch_words=sketch_words,
        seed=seed,
        sides=side_array,
    )
    return PreprocessedCollection(store, records=normalized)
