"""Preprocessing shared by CPSJOIN and the MinHash LSH baseline.

Section V-A.1 of the paper: before running the join, every record is mapped
to a length-``t`` MinHash signature (the embedding of Section II-A) and to a
1-bit minwise sketch of ``64 · ℓ`` bits.  The paper notes that this
preprocessing is reusable across joins with different thresholds and
therefore not counted in the reported join times; we follow the same
convention — :class:`PreprocessedCollection` is built once per dataset and
passed to the join engines, and its construction time is reported separately
in :class:`repro.result.JoinStats.preprocessing_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Record
from repro.hashing.minhash import MinHasher, MinHashSignatures
from repro.hashing.sketch import OneBitMinHashSketches, build_sketches
from repro.result import Timer

__all__ = ["PreprocessedCollection", "preprocess_collection"]


@dataclass
class PreprocessedCollection:
    """A collection of records plus the hashing artefacts the joins need.

    Attributes
    ----------
    records:
        The original records as sorted token tuples (used for exact
        verification).
    signatures:
        MinHash signatures of shape ``(n, t)``.
    sketches:
        Packed 1-bit minwise sketches of shape ``(n, ℓ)``.
    preprocessing_seconds:
        Wall-clock time spent building the signatures and sketches.
    sides:
        Optional per-record side labels for R ⋈ S joins: an ``int8`` array of
        0 (record belongs to R) and 1 (record belongs to S).  When present,
        the execution backends skip every same-side comparison, so only
        cross-side pairs are counted, filtered, and verified.  ``None`` (the
        default) means a plain self-join.
    """

    records: List[Record]
    signatures: MinHashSignatures
    sketches: OneBitMinHashSketches
    preprocessing_seconds: float
    sides: Optional[np.ndarray] = None
    _packed_tokens: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )
    _sketch_bigints: Optional[List[int]] = field(default=None, repr=False, compare=False)

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def embedding_size(self) -> int:
        return self.signatures.num_functions

    def record_sizes(self) -> np.ndarray:
        """Sizes of all records as an int array (used by size filters)."""
        return np.array([len(record) for record in self.records], dtype=np.int64)

    def packed_tokens(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-style packed token arrays ``(values, offsets)``, built lazily.

        ``values`` concatenates every record's sorted tokens as ``int64``;
        record ``i`` occupies ``values[offsets[i]:offsets[i + 1]]``.  The
        arrays are cached on the collection so the vectorized backend packs
        each dataset only once across repetitions.  Concurrent first calls
        from parallel repetition workers are a benign race: both compute the
        same arrays and the last assignment wins.
        """
        if self._packed_tokens is None:
            offsets = np.zeros(len(self.records) + 1, dtype=np.int64)
            np.cumsum([len(record) for record in self.records], out=offsets[1:])
            values = np.fromiter(
                (token for record in self.records for token in record),
                dtype=np.int64,
                count=int(offsets[-1]),
            )
            self._packed_tokens = (values, offsets)
        return self._packed_tokens

    def sketch_bigints(self) -> List[int]:
        """Each record's 1-bit sketch as one Python integer, built lazily.

        The scalar fast paths compare sketches with ``int.bit_count()`` on
        these arbitrary-precision integers instead of dispatching numpy calls
        on tiny arrays; cached like :meth:`packed_tokens` (same benign race).
        """
        if self._sketch_bigints is None:
            words = np.ascontiguousarray(self.sketches.words)
            row_bytes = words.shape[1] * words.dtype.itemsize
            raw = words.tobytes()
            self._sketch_bigints = [
                int.from_bytes(raw[index * row_bytes : (index + 1) * row_bytes], "little")
                for index in range(words.shape[0])
            ]
        return self._sketch_bigints


def preprocess_collection(
    records: Sequence[Sequence[int]],
    embedding_size: int = 128,
    sketch_words: int = 8,
    seed: Optional[int] = None,
    sides: Optional[Sequence[int]] = None,
) -> PreprocessedCollection:
    """Build MinHash signatures and 1-bit minwise sketches for a collection.

    Parameters
    ----------
    records:
        The collection; every record must be non-empty.
    embedding_size:
        Number of MinHash functions ``t``.
    sketch_words:
        Sketch length ``ℓ`` in 64-bit words.
    seed:
        Seed for all hash functions (signatures and sketches derive
        independent streams from it).
    sides:
        Optional per-record side labels (0 = R, 1 = S) for R ⋈ S joins; must
        have one entry per record.  ``None`` means a plain self-join.
    """
    normalized: List[Record] = [tuple(sorted(set(int(token) for token in record))) for record in records]
    for index, record in enumerate(normalized):
        if not record:
            raise ValueError(f"record {index} is empty; empty records cannot be joined")

    side_array: Optional[np.ndarray] = None
    if sides is not None:
        side_array = np.asarray(list(sides), dtype=np.int8)
        if side_array.ndim != 1 or side_array.shape[0] != len(normalized):
            raise ValueError(
                f"sides must have one entry per record: got {side_array.shape[0]} sides "
                f"for {len(normalized)} records"
            )
        if side_array.size and not np.isin(side_array, (0, 1)).all():
            raise ValueError("sides entries must be 0 (record in R) or 1 (record in S)")

    with Timer() as timer:
        minhasher = MinHasher(num_functions=embedding_size, seed=seed)
        signatures = minhasher.signatures(normalized)
        sketch_seed = None if seed is None else seed + 0x5EED
        sketches = build_sketches(signatures.matrix, num_words=sketch_words, seed=sketch_seed)
    return PreprocessedCollection(
        records=normalized,
        signatures=signatures,
        sketches=sketches,
        preprocessing_seconds=timer.elapsed,
        sides=side_array,
    )
