"""Repetition engine: boosting the recall of randomized joins, in parallel.

A single CPSJOIN run reports each qualifying pair with probability
``ϕ = Ω(ε / log n)`` (Lemma 6); ``r`` independent repetitions miss a pair with
probability at most ``(1 - ϕ)^r``.  The paper fixes ten repetitions, which
empirically achieves more than 90 % recall on every dataset and threshold
(Section V-A.5).

The repetitions are statistically independent — repetition ``r`` derives its
randomness only from ``config.seed`` and ``r`` — so the engine can execute
them on a pool of parallel workers (:mod:`concurrent.futures`) and still
produce results that are bit-for-bit identical to a sequential run: results
are always merged in repetition order, regardless of completion order.

Each repetition runs through the shared staged pipeline of
:class:`repro.engine.JoinEngine` (the engines' ``run_once`` dispatches
there), so merged statistics carry the per-stage timing split: the
``candidate_seconds`` / ``filter_seconds`` / ``verify_seconds`` fields sum
worker-side stage times across repetitions, exactly like
``worker_seconds``.

Timing is reported honestly under parallelism: ``JoinStats.elapsed_seconds``
is the wall-clock time of the whole join while ``JoinStats.worker_seconds``
sums the time the individual repetitions measured for themselves (the two
coincide for ``workers=1`` up to scheduling overhead).

The experiments additionally use an *adaptive* mode mirroring Section VI-2:
repetitions are run one at a time and stopped as soon as the measured recall
against a known ground truth (or a sampled estimate of it) reaches the target.
Both modes are provided here; the adaptive mode is what the Table II and
Figure 2 harnesses use so that every algorithm is compared at the same recall
level, exactly as the paper does.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import CPSJoinConfig
from repro.core.preprocess import PreprocessedCollection, preprocess_collection
from repro.result import JoinResult, JoinStats, Timer, canonical_pair

__all__ = [
    "RepetitionEngine",
    "RepetitionDriver",
    "join_with_target_recall",
    "repetitions_for_recall",
]

Pair = Tuple[int, int]


def repetitions_for_recall(single_run_recall: float, target_recall: float) -> int:
    """Number of independent repetitions needed to boost a per-pair recall.

    If one run reports a pair with probability ``ϕ``, then ``r`` runs reach
    recall ``1 - (1 - ϕ)^r``; solving for ``r`` gives the bound used both by
    the MinHash LSH baseline (Section V-B) and the theory of Section IV.
    """
    if not 0.0 < single_run_recall < 1.0:
        raise ValueError("single_run_recall must be in (0, 1)")
    if not 0.0 < target_recall < 1.0:
        raise ValueError("target_recall must be in (0, 1)")
    return max(1, math.ceil(math.log(1.0 - target_recall) / math.log(1.0 - single_run_recall)))


class RepetitionEngine:
    """Runs a randomized join engine repeatedly, accumulating results.

    Parameters
    ----------
    engine:
        Any engine exposing ``run_once(collection, repetition=r)`` and a
        ``threshold`` attribute (CPSJOIN in this repository).
    collection:
        A preprocessed collection (shared read-only across repetitions, as in
        the paper where preprocessing is done once and excluded from join
        time).  A side-aware collection (R ⋈ S join, see
        :func:`repro.core.preprocess.preprocess_collection`) works unchanged:
        the side labels travel with the collection into every repetition, and
        the deterministic merge is oblivious to them.
    workers:
        Number of parallel workers.  ``1`` runs sequentially; larger values
        dispatch repetitions to a thread pool.  The merged result is
        independent of the worker count for a fixed engine seed.
    """

    def __init__(
        self,
        engine,
        collection: PreprocessedCollection,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.engine = engine
        self.collection = collection
        self.workers = workers

    # ------------------------------------------------------------------ execution
    def _run_repetitions(self, count: int, start: int = 0) -> List[JoinResult]:
        """Run ``count`` repetitions (numbered from ``start``), in repetition order.

        With ``workers > 1`` the repetitions execute concurrently but the
        returned list is always ordered by repetition number, making every
        downstream merge deterministic.
        """
        if self.workers == 1 or count <= 1:
            return [
                self.engine.run_once(self.collection, repetition=start + offset)
                for offset in range(count)
            ]
        with ThreadPoolExecutor(max_workers=min(self.workers, count)) as pool:
            futures = [
                pool.submit(self.engine.run_once, self.collection, repetition=start + offset)
                for offset in range(count)
            ]
            return [future.result() for future in futures]

    def _fresh_stats(self) -> JoinStats:
        return JoinStats(
            algorithm=getattr(self.engine, "algorithm_name", "CPSJOIN"),
            threshold=self.engine.threshold,
            num_records=self.collection.num_records,
            repetitions=0,
            preprocessing_seconds=self.collection.preprocessing_seconds,
        )

    # ------------------------------------------------------------------ fixed repetitions
    def run_fixed(self, repetitions: int) -> JoinResult:
        """Run a fixed number of repetitions and return the union of results."""
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        pairs: Set[Pair] = set()
        stats = self._fresh_stats()
        with Timer() as wall:
            for result in self._run_repetitions(repetitions):
                pairs |= result.pairs
                stats.merge(result.stats)
        stats.results = len(pairs)
        stats.elapsed_seconds = wall.elapsed
        return JoinResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------ recall-targeted repetitions
    def run_until_recall(
        self,
        ground_truth: Iterable[Pair],
        target_recall: float = 0.9,
        max_repetitions: int = 50,
    ) -> JoinResult:
        """Repeat until the measured recall against ``ground_truth`` reaches the target.

        This mirrors the experimental protocol of Section VI-2: the recall of
        the approximate methods is measured against the exact result and
        repetitions stop once the target (90 % in the paper) is reached.

        With ``workers > 1`` repetitions are dispatched in waves of
        ``workers``, but the recall check is still applied in repetition
        order and merging stops at the first repetition meeting the target —
        so the returned result is identical to a sequential run (surplus
        repetitions of the final wave are computed but discarded).
        """
        if not 0.0 < target_recall <= 1.0:
            raise ValueError("target_recall must be in (0, 1]")
        truth = {canonical_pair(*pair) for pair in ground_truth}
        pairs: Set[Pair] = set()
        stats = self._fresh_stats()
        with Timer() as wall:
            completed = 0
            done = False
            while completed < max_repetitions and not done:
                wave = min(self.workers, max_repetitions - completed)
                for result in self._run_repetitions(wave, start=completed):
                    pairs |= result.pairs
                    stats.merge(result.stats)
                    completed += 1
                    if not truth:
                        done = True
                        break
                    recall = sum(1 for pair in truth if pair in pairs) / len(truth)
                    stats.extra["measured_recall"] = recall
                    if recall >= target_recall:
                        done = True
                        break
        stats.results = len(pairs)
        stats.elapsed_seconds = wall.elapsed
        return JoinResult(pairs=pairs, stats=stats)


class RepetitionDriver(RepetitionEngine):
    """Backward-compatible alias of :class:`RepetitionEngine`.

    The seed implementation exposed the sequential driver under this name;
    it remains available (including the ``workers`` extension) for existing
    callers.
    """


def join_with_target_recall(
    records: Sequence[Sequence[int]],
    threshold: float,
    ground_truth: Iterable[Pair],
    target_recall: float = 0.9,
    config: Optional[CPSJoinConfig] = None,
    max_repetitions: int = 50,
) -> JoinResult:
    """Convenience wrapper: preprocess, then repeat CPSJOIN until the target recall.

    Used by the experiment harnesses that, like the paper, compare algorithms
    at a fixed recall level of at least 90 %.
    """
    from repro.core.cpsjoin import CPSJoin

    config = config if config is not None else CPSJoinConfig()
    engine = CPSJoin(threshold, config)
    collection = preprocess_collection(
        records,
        embedding_size=config.embedding_size,
        sketch_words=config.sketch_words,
        seed=config.seed,
    )
    driver = RepetitionEngine(engine, collection, workers=config.workers)
    return driver.run_until_recall(ground_truth, target_recall=target_recall, max_repetitions=max_repetitions)
