"""Repetition driver: boosting the recall of randomized joins.

A single CPSJOIN run reports each qualifying pair with probability
``ϕ = Ω(ε / log n)`` (Lemma 6); ``r`` independent repetitions miss a pair with
probability at most ``(1 - ϕ)^r``.  The paper fixes ten repetitions, which
empirically achieves more than 90 % recall on every dataset and threshold
(Section V-A.5).

The experiments additionally use an *adaptive* mode mirroring Section VI-2:
repetitions are run one at a time and stopped as soon as the measured recall
against a known ground truth (or a sampled estimate of it) reaches the target.
Both modes are provided here; the adaptive mode is what the Table II and
Figure 2 harnesses use so that every algorithm is compared at the same recall
level, exactly as the paper does.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Sequence, Set, Tuple

from repro.core.config import CPSJoinConfig
from repro.core.cpsjoin import CPSJoin
from repro.core.preprocess import PreprocessedCollection, preprocess_collection
from repro.result import JoinResult, JoinStats, canonical_pair

__all__ = ["RepetitionDriver", "join_with_target_recall", "repetitions_for_recall"]

Pair = Tuple[int, int]


def repetitions_for_recall(single_run_recall: float, target_recall: float) -> int:
    """Number of independent repetitions needed to boost a per-pair recall.

    If one run reports a pair with probability ``ϕ``, then ``r`` runs reach
    recall ``1 - (1 - ϕ)^r``; solving for ``r`` gives the bound used both by
    the MinHash LSH baseline (Section V-B) and the theory of Section IV.
    """
    if not 0.0 < single_run_recall < 1.0:
        raise ValueError("single_run_recall must be in (0, 1)")
    if not 0.0 < target_recall < 1.0:
        raise ValueError("target_recall must be in (0, 1)")
    return max(1, math.ceil(math.log(1.0 - target_recall) / math.log(1.0 - single_run_recall)))


class RepetitionDriver:
    """Runs a randomized join engine repeatedly, accumulating results.

    Parameters
    ----------
    engine:
        The CPSJOIN engine to repeat.
    collection:
        A preprocessed collection (shared across repetitions, as in the paper
        where preprocessing is done once and excluded from join time).
    """

    def __init__(self, engine: CPSJoin, collection: PreprocessedCollection) -> None:
        self.engine = engine
        self.collection = collection

    def run_fixed(self, repetitions: int) -> JoinResult:
        """Run a fixed number of repetitions and return the union of results."""
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        pairs: Set[Pair] = set()
        stats = JoinStats(
            algorithm="CPSJOIN",
            threshold=self.engine.threshold,
            num_records=self.collection.num_records,
            repetitions=0,
            preprocessing_seconds=self.collection.preprocessing_seconds,
        )
        for repetition in range(repetitions):
            result = self.engine.run_once(self.collection, repetition=repetition)
            pairs |= result.pairs
            stats.merge(result.stats)
        stats.results = len(pairs)
        return JoinResult(pairs=pairs, stats=stats)

    def run_until_recall(
        self,
        ground_truth: Iterable[Pair],
        target_recall: float = 0.9,
        max_repetitions: int = 50,
    ) -> JoinResult:
        """Repeat until the measured recall against ``ground_truth`` reaches the target.

        This mirrors the experimental protocol of Section VI-2: the recall of
        the approximate methods is measured against the exact result and
        repetitions stop once the target (90 % in the paper) is reached.
        """
        if not 0.0 < target_recall <= 1.0:
            raise ValueError("target_recall must be in (0, 1]")
        truth = {canonical_pair(*pair) for pair in ground_truth}
        pairs: Set[Pair] = set()
        stats = JoinStats(
            algorithm="CPSJOIN",
            threshold=self.engine.threshold,
            num_records=self.collection.num_records,
            repetitions=0,
            preprocessing_seconds=self.collection.preprocessing_seconds,
        )
        for repetition in range(max_repetitions):
            result = self.engine.run_once(self.collection, repetition=repetition)
            pairs |= result.pairs
            stats.merge(result.stats)
            if not truth:
                break
            recall = sum(1 for pair in truth if pair in pairs) / len(truth)
            stats.extra["measured_recall"] = recall
            if recall >= target_recall:
                break
        stats.results = len(pairs)
        return JoinResult(pairs=pairs, stats=stats)


def join_with_target_recall(
    records: Sequence[Sequence[int]],
    threshold: float,
    ground_truth: Iterable[Pair],
    target_recall: float = 0.9,
    config: Optional[CPSJoinConfig] = None,
    max_repetitions: int = 50,
) -> JoinResult:
    """Convenience wrapper: preprocess, then repeat CPSJOIN until the target recall.

    Used by the experiment harnesses that, like the paper, compare algorithms
    at a fixed recall level of at least 90 %.
    """
    config = config if config is not None else CPSJoinConfig()
    engine = CPSJoin(threshold, config)
    collection = preprocess_collection(
        records,
        embedding_size=config.embedding_size,
        sketch_words=config.sketch_words,
        seed=config.seed,
    )
    driver = RepetitionDriver(engine, collection)
    return driver.run_until_recall(ground_truth, target_recall=target_recall, max_repetitions=max_repetitions)
