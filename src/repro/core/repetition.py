"""Repetition engine: boosting the recall of randomized joins, in parallel.

A single CPSJOIN run reports each qualifying pair with probability
``ϕ = Ω(ε / log n)`` (Lemma 6); ``r`` independent repetitions miss a pair with
probability at most ``(1 - ϕ)^r``.  The paper fixes ten repetitions, which
empirically achieves more than 90 % recall on every dataset and threshold
(Section V-A.5).

The repetitions are statistically independent — repetition ``r`` derives its
randomness only from ``config.seed`` and ``r`` — so the engine can execute
them on a pool of parallel workers and still produce results that are
bit-for-bit identical to a sequential run: results are always merged in
repetition order, regardless of completion order.  Within a repetition the
randomness is likewise walk-agnostic: the repetition generator is consumed
once for a root entropy draw, and every Chosen Path tree node derives its
split coordinates and estimator stream from its own node key (see
:mod:`repro.core.frontier`), so the scalar recursion and the array frontier
— and any worker executing either — consume identical per-node randomness.
*How* the repetitions are dispatched is a pluggable **executor**:

* ``"serial"`` — run in-process, one after the other (the reference).
* ``"threads"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap
  to start and shares the collection for free, but the GIL serializes all
  pure-Python work; it only helps when the numpy backend spends most of its
  time inside C kernels.
* ``"processes"`` — a :class:`~concurrent.futures.ProcessPoolExecutor` fed
  through shared memory: the parent places the collection's
  :class:`repro.store.RecordStore` in a shared segment once
  (:meth:`~repro.store.RecordStore.to_shared`), ships only the tiny store
  handle, the engine object and a shard of repetition ids to each worker,
  and every worker attaches zero-copy and runs its shard through the staged
  :class:`repro.engine.JoinEngine`.  No record objects are ever pickled;
  results come back as plain pair sets and are merged in repetition order.

Each repetition runs through the shared staged pipeline of
:class:`repro.engine.JoinEngine` (the engines' ``run_once`` dispatches
there), so merged statistics carry the per-stage timing split: the
``candidate_seconds`` / ``filter_seconds`` / ``verify_seconds`` fields sum
worker-side stage times across repetitions, exactly like
``worker_seconds``.

Timing is reported honestly under parallelism: ``JoinStats.elapsed_seconds``
is the wall-clock time of the whole join while ``JoinStats.worker_seconds``
sums the time the individual repetitions measured for themselves (the two
coincide for ``workers=1`` up to scheduling overhead).

The experiments additionally use an *adaptive* mode mirroring Section VI-2:
repetitions are run one at a time and stopped as soon as the measured recall
against a known ground truth (or a sampled estimate of it) reaches the target.
Both modes are provided here; the adaptive mode is what the Table II and
Figure 2 harnesses use so that every algorithm is compared at the same recall
level, exactly as the paper does.
"""

from __future__ import annotations

import contextvars
import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import CPSJoinConfig
from repro.core.preprocess import PreprocessedCollection, preprocess_collection
from repro.obs.tracing import span
from repro.result import JoinResult, JoinStats, Timer, canonical_pair
from repro.store import RecordStore, StoreHandle

__all__ = [
    "EXECUTOR_NAMES",
    "RepetitionEngine",
    "RepetitionDriver",
    "join_with_target_recall",
    "repetitions_for_recall",
    "process_pool_context",
]

Pair = Tuple[int, int]

EXECUTOR_NAMES = ("serial", "threads", "processes")
"""Names accepted by ``executor=`` arguments throughout the library."""


def repetitions_for_recall(single_run_recall: float, target_recall: float) -> int:
    """Number of independent repetitions needed to boost a per-pair recall.

    If one run reports a pair with probability ``ϕ``, then ``r`` runs reach
    recall ``1 - (1 - ϕ)^r``; solving for ``r`` gives the bound used both by
    the MinHash LSH baseline (Section V-B) and the theory of Section IV.
    """
    if not 0.0 < single_run_recall < 1.0:
        raise ValueError("single_run_recall must be in (0, 1)")
    if not 0.0 < target_recall < 1.0:
        raise ValueError("target_recall must be in (0, 1)")
    return max(1, math.ceil(math.log(1.0 - target_recall) / math.log(1.0 - single_run_recall)))


def process_pool_context():
    """The multiprocessing context the process executor uses.

    ``fork`` on Linux (workers start in milliseconds and inherit the
    imported modules), ``spawn`` everywhere else — macOS offers fork but
    forking after the ObjC runtime / Accelerate BLAS initialize is unsafe,
    which is why CPython made spawn the macOS default (bpo-33725).  Either
    way the data travels through shared memory, not the inherited address
    space, so the choice only affects startup latency.
    """
    import sys

    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def shard_round_robin(count: int, shards: int, start: int = 0) -> List[List[int]]:
    """Deal ``count`` items (numbered from ``start``) round-robin into shards.

    Round-robin keeps the shards balanced when per-repetition cost drifts
    with the repetition index; the merge re-orders by id anyway, so the
    dealing order never affects results.
    """
    shards = max(1, min(shards, count))
    dealt: List[List[int]] = [[] for _ in range(shards)]
    for offset in range(count):
        dealt[offset % shards].append(start + offset)
    return dealt


# ---------------------------------------------------------------------------
# Worker-process side.  A worker attaches the shared store once per segment
# and caches the attachment for its lifetime: repeated tasks on the same
# collection cost zero additional copies or pickling.
# ---------------------------------------------------------------------------
_WORKER_COLLECTIONS: Dict[str, PreprocessedCollection] = {}


def _attached_collection(handle: StoreHandle) -> PreprocessedCollection:
    """Attach (or reuse) the shared store behind ``handle`` in this worker."""
    collection = _WORKER_COLLECTIONS.get(handle.segment_name)
    if collection is None:
        store = RecordStore.attach(handle)
        collection = PreprocessedCollection.from_store(store)
        _WORKER_COLLECTIONS[handle.segment_name] = collection
    return collection


def _run_repetition_shard(
    handle: StoreHandle, engine, repetition_ids: Sequence[int]
) -> List[Tuple[int, JoinResult]]:
    """Run a shard of repetitions against the shared store (worker entry point)."""
    collection = _attached_collection(handle)
    return [
        (repetition, engine.run_once(collection, repetition=repetition))
        for repetition in repetition_ids
    ]


class RepetitionEngine:
    """Runs a randomized join engine repeatedly, accumulating results.

    Parameters
    ----------
    engine:
        Any engine exposing ``run_once(collection, repetition=r)`` and a
        ``threshold`` attribute (CPSJOIN in this repository).  The process
        executor pickles the engine object itself — engines are small policy
        objects (a threshold plus a config), never data carriers.
    collection:
        A preprocessed collection (shared read-only across repetitions, as in
        the paper where preprocessing is done once and excluded from join
        time).  A side-aware collection (R ⋈ S join, see
        :func:`repro.core.preprocess.preprocess_collection`) works unchanged:
        the side labels travel with the collection into every repetition, and
        the deterministic merge is oblivious to them.
    workers:
        Number of parallel workers.  ``1`` always runs sequentially.  The
        merged result is independent of the worker count for a fixed engine
        seed.
    executor:
        ``"serial"``, ``"threads"`` (default) or ``"processes"`` — see the
        module docstring for the trade-offs.  ``"serial"`` ignores
        ``workers``; with ``workers=1`` all executors reduce to the serial
        path.
    """

    def __init__(
        self,
        engine,
        collection: PreprocessedCollection,
        workers: int = 1,
        executor: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        executor = "threads" if executor is None else str(executor).lower()
        if executor not in EXECUTOR_NAMES:
            raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTOR_NAMES}")
        self.engine = engine
        self.collection = collection
        self.workers = workers
        self.executor = executor
        self._lease = None
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Tear down the process pool and unlink the shared segment.

        Idempotent and double-close safe; called automatically at the end of
        :meth:`run_fixed` / :meth:`run_until_recall`.  A closed engine lazily
        re-creates its resources on the next run.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        lease, self._lease = self._lease, None
        if lease is not None:
            lease.close()

    def __enter__(self) -> "RepetitionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        """Lazily create the shared segment and the worker pool (kept across waves)."""
        if self._lease is None:
            self._lease = self.collection.to_shared()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=process_pool_context()
            )
        return self._pool

    # ------------------------------------------------------------------ execution
    def _run_repetitions(self, count: int, start: int = 0) -> List[JoinResult]:
        """Run ``count`` repetitions (numbered from ``start``), in repetition order.

        With ``workers > 1`` the repetitions execute concurrently but the
        returned list is always ordered by repetition number, making every
        downstream merge deterministic — and identical across executors.
        """
        if self.executor == "serial" or self.workers == 1 or count <= 1:
            return [
                self._run_one_traced(start + offset)
                for offset in range(count)
            ]
        if self.executor == "processes":
            return self._run_repetitions_processes(count, start)
        with ThreadPoolExecutor(max_workers=min(self.workers, count)) as pool:
            # Each task gets its own context copy so repetition spans nest
            # under the caller's span despite the thread hop (and two tasks
            # never race on one Context object).
            futures = [
                pool.submit(
                    contextvars.copy_context().run, self._run_one_traced, start + offset
                )
                for offset in range(count)
            ]
            return [future.result() for future in futures]

    def _run_one_traced(self, repetition: int) -> JoinResult:
        """One repetition, wrapped in its correlation span."""
        with span("join.repetition", repetition=repetition, executor=self.executor):
            return self.engine.run_once(self.collection, repetition=repetition)

    def _run_repetitions_processes(self, count: int, start: int) -> List[JoinResult]:
        """Dispatch repetition shards to worker processes over the shared store.

        Each worker receives the store handle, the (pickled) engine and its
        shard of repetition ids; it attaches the shared segment zero-copy and
        runs the shard through the staged join engine.  Results are keyed by
        repetition id and returned in repetition order.
        """
        pool = self._ensure_process_pool()
        handle = self._lease.handle
        shards = shard_round_robin(count, self.workers, start=start)
        # Worker processes carry no tracer; the wave span on the parent side
        # is the correlation point for the whole fan-out.
        with span(
            "join.process_wave", repetitions=count, start=start, shards=len(shards)
        ):
            futures = [
                pool.submit(_run_repetition_shard, handle, self.engine, shard)
                for shard in shards
            ]
            by_repetition: Dict[int, JoinResult] = {}
            for future in futures:
                for repetition, result in future.result():
                    by_repetition[repetition] = result
        return [by_repetition[start + offset] for offset in range(count)]

    def _fresh_stats(self) -> JoinStats:
        return JoinStats(
            algorithm=getattr(self.engine, "algorithm_name", "CPSJOIN"),
            threshold=self.engine.threshold,
            num_records=self.collection.num_records,
            repetitions=0,
            preprocessing_seconds=self.collection.preprocessing_seconds,
        )

    # ------------------------------------------------------------------ fixed repetitions
    def run_fixed(self, repetitions: int) -> JoinResult:
        """Run a fixed number of repetitions and return the union of results."""
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        pairs: Set[Pair] = set()
        stats = self._fresh_stats()
        try:
            with Timer() as wall:
                for result in self._run_repetitions(repetitions):
                    pairs |= result.pairs
                    stats.merge(result.stats)
        finally:
            self.close()
        stats.results = len(pairs)
        stats.elapsed_seconds = wall.elapsed
        return JoinResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------ recall-targeted repetitions
    def run_until_recall(
        self,
        ground_truth: Iterable[Pair],
        target_recall: float = 0.9,
        max_repetitions: int = 50,
    ) -> JoinResult:
        """Repeat until the measured recall against ``ground_truth`` reaches the target.

        This mirrors the experimental protocol of Section VI-2: the recall of
        the approximate methods is measured against the exact result and
        repetitions stop once the target (90 % in the paper) is reached.

        With ``workers > 1`` repetitions are dispatched in waves of
        ``workers`` (the process pool and shared segment persist across
        waves), but the recall check is still applied in repetition order and
        merging stops at the first repetition meeting the target — so the
        returned result is identical to a sequential run (surplus repetitions
        of the final wave are computed but discarded).
        """
        if not 0.0 < target_recall <= 1.0:
            raise ValueError("target_recall must be in (0, 1]")
        truth = {canonical_pair(*pair) for pair in ground_truth}
        pairs: Set[Pair] = set()
        stats = self._fresh_stats()
        try:
            with Timer() as wall:
                completed = 0
                done = False
                while completed < max_repetitions and not done:
                    wave = min(self.workers, max_repetitions - completed)
                    for result in self._run_repetitions(wave, start=completed):
                        pairs |= result.pairs
                        stats.merge(result.stats)
                        completed += 1
                        if not truth:
                            done = True
                            break
                        recall = sum(1 for pair in truth if pair in pairs) / len(truth)
                        stats.extra["measured_recall"] = recall
                        if recall >= target_recall:
                            done = True
                            break
        finally:
            self.close()
        stats.results = len(pairs)
        stats.elapsed_seconds = wall.elapsed
        return JoinResult(pairs=pairs, stats=stats)


class RepetitionDriver(RepetitionEngine):
    """Backward-compatible alias of :class:`RepetitionEngine`.

    The seed implementation exposed the sequential driver under this name;
    it remains available (including the ``workers`` / ``executor``
    extensions) for existing callers.
    """


def join_with_target_recall(
    records: Sequence[Sequence[int]],
    threshold: float,
    ground_truth: Iterable[Pair],
    target_recall: float = 0.9,
    config: Optional[CPSJoinConfig] = None,
    max_repetitions: int = 50,
) -> JoinResult:
    """Convenience wrapper: preprocess, then repeat CPSJOIN until the target recall.

    Used by the experiment harnesses that, like the paper, compare algorithms
    at a fixed recall level of at least 90 %.
    """
    from repro.core.cpsjoin import CPSJoin

    config = config if config is not None else CPSJoinConfig()
    engine = CPSJoin(threshold, config)
    collection = preprocess_collection(
        records,
        embedding_size=config.embedding_size,
        sketch_words=config.sketch_words,
        seed=config.seed,
    )
    driver = RepetitionEngine(
        engine, collection, workers=config.workers, executor=config.executor
    )
    return driver.run_until_recall(ground_truth, target_recall=target_recall, max_repetitions=max_repetitions)
