"""Level-synchronous array frontier for the Chosen Path tree walk.

The Chosen Path recursion of :mod:`repro.core.cpsjoin` is a tree walk whose
per-node work — sampling split coordinates, grouping a subproblem by MinHash
value, testing the BRUTEFORCE cut-offs — is tiny, so a scalar depth-first
walk spends most of its time in Python call overhead.  This module
re-expresses the walk breadth-first over *array frontiers*: one flat
``record_id`` array per tree level (with per-node offsets), all nodes of a
level split in a single column gather + stable-lexsort grouping pass, the
stopping rules evaluated as vectorized masks, and candidate tasks emitted
from array slices.

**Per-node seeding.**  A breadth-first walk visits nodes in a different
order than the depth-first reference, so node randomness cannot come from a
shared sequential generator.  Instead every node's randomness is a pure
function of its identity:

* the repetition generator is consumed exactly once, for a 63-bit
  ``root_entropy`` value;
* each node carries a 64-bit *node key* — ``splitmix64`` of the root entropy
  at the root, mixed with the child rank along every edge
  (:func:`child_node_keys`);
* the split-coordinate Bernoullis of Algorithm 1 are counter-based hashes of
  ``(node key, coordinate)`` (:func:`coordinate_uniforms`), vectorizable over
  a whole frontier at once;
* the sampled average-similarity estimator of the BRUTEFORCE step draws from
  a generator seeded with the node key (:func:`estimator_rng`) — the node's
  identity, not the visit order, names the stream.

Both the recursive reference and this frontier derive their randomness this
way, so they emit the **identical task stream** (same tasks, same order,
same ``tree_nodes`` / ``max_depth`` statistics) at any seed; the property
suite in ``tests/core/test_frontier.py`` enforces this for all three
stopping strategies.  Depth-first order is recovered from the level arrays
by a final preorder traversal over the stored parent/child structure — task
*order* never affects the verified pair set (dedup and verification are
order-independent), but identical streams make the equivalence testable
object-for-object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.engine import PointCandidates, SubsetCandidates, Task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.cpsjoin import ChosenPathCandidateStage

__all__ = [
    "child_node_keys",
    "chosen_split_coordinates",
    "coordinate_uniforms",
    "estimator_rng",
    "fallback_coordinates",
    "frontier_tasks",
    "resolve_candidate_walk",
    "root_node_key",
]

_UINT64 = np.uint64
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_FALLBACK_SALT = 0xD1B54A32D192ED03


def _mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 in, uint64 out, wrapping)."""
    x = values.astype(_UINT64, copy=True)
    x ^= x >> _UINT64(30)
    x *= _UINT64(_MIX_1)
    x ^= x >> _UINT64(27)
    x *= _UINT64(_MIX_2)
    x ^= x >> _UINT64(31)
    return x


def root_node_key(root_entropy: int) -> int:
    """Node key of the tree root, derived from the repetition's entropy draw."""
    return int(_mix64(np.array([root_entropy ^ _GOLDEN], dtype=_UINT64))[0])


def child_node_keys(parent_keys: np.ndarray, child_ranks: np.ndarray) -> np.ndarray:
    """Node keys of children, mixed from parent keys and child ranks.

    ``child_rank`` is the child's position among its parent's kept buckets —
    the same enumeration order in both walks, so equal (parent, rank) pairs
    get equal keys however the tree is traversed.
    """
    parents = np.asarray(parent_keys, dtype=_UINT64)
    ranks = np.asarray(child_ranks).astype(_UINT64) + _UINT64(1)
    return _mix64(parents ^ _mix64(ranks))


_COORDINATE_SALTS: Dict[int, np.ndarray] = {}


def _coordinate_salts(num_functions: int) -> np.ndarray:
    salts = _COORDINATE_SALTS.get(num_functions)
    if salts is None:
        salts = _mix64(np.arange(num_functions, dtype=_UINT64) + _UINT64(_GOLDEN))
        _COORDINATE_SALTS[num_functions] = salts
    return salts


def coordinate_uniforms(node_keys: np.ndarray, num_functions: int) -> np.ndarray:
    """Per-(node, coordinate) uniforms in ``[0, 1)`` — the split Bernoullis.

    Counter-based: row ``i`` column ``j`` is a pure function of
    ``(node_keys[i], j)``, so a frontier of nodes evaluates the whole matrix
    in one pass and a scalar walk gets the identical row one node at a time.
    """
    keys = np.asarray(node_keys, dtype=_UINT64)
    mixed = _mix64(keys[:, None] ^ _coordinate_salts(num_functions)[None, :])
    return (mixed >> _UINT64(11)).astype(np.float64) * (2.0**-53)


def fallback_coordinates(node_keys: np.ndarray, num_functions: int) -> np.ndarray:
    """Deterministic fallback coordinate per node when no Bernoulli fired."""
    keys = np.asarray(node_keys, dtype=_UINT64)
    return (_mix64(keys ^ _UINT64(_FALLBACK_SALT)) % _UINT64(num_functions)).astype(np.intp)


def chosen_split_coordinates(node_key: int, num_functions: int, probability: float) -> np.ndarray:
    """Sorted split coordinates of one node (scalar-walk entry point).

    Each coordinate is chosen independently with the splitting probability;
    when none fires the fallback coordinate guarantees progress — exactly the
    sampling the frontier applies mask-wise to a whole level.
    """
    keys = np.array([node_key], dtype=_UINT64)
    chosen = np.flatnonzero(coordinate_uniforms(keys, num_functions)[0] < probability)
    if chosen.size == 0:
        chosen = fallback_coordinates(keys, num_functions)
    return chosen


def estimator_rng(node_key: int) -> np.random.Generator:
    """Generator for a node's sampled average-similarity estimate.

    Seeded from the node's 64-bit key — itself a pure function of the root
    entropy and the node's path of child ranks — so the estimate is a pure
    function of the node's identity: the reason a breadth-first and a
    depth-first walk can consume "the same" randomness at every node.
    """
    return np.random.Generator(np.random.PCG64(node_key))


def resolve_candidate_walk(candidate_walk: str, backend_name: str) -> str:
    """Resolve the configured walk: ``auto`` pairs frontier with numpy."""
    if candidate_walk == "auto":
        return "frontier" if backend_name == "numpy" else "recursive"
    return candidate_walk


# --------------------------------------------------------------------- split
def _split_level(
    matrix: np.ndarray,
    parts: List[np.ndarray],
    keys: np.ndarray,
    num_functions: int,
    probability: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split every surviving node of a level in one grouping pass.

    Returns ``(child_records, child_offsets, child_parents, child_ranks,
    child_keys)`` where ``child_parents`` indexes into ``parts`` and children
    appear parent-major, and within a parent exactly in the reference
    enumeration order: ascending split coordinate, then buckets by first
    occurrence, members in subset order, buckets of fewer than two records
    dropped.
    """
    sizes = np.array([part.size for part in parts], dtype=np.int64)
    records = np.concatenate(parts) if parts else np.zeros(0, dtype=np.intp)
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])

    # One (node, coordinate) slot per chosen Bernoulli, node-major and
    # coordinate-ascending by construction of np.nonzero.
    mask = coordinate_uniforms(keys, num_functions) < probability
    rowless = ~mask.any(axis=1)
    if rowless.any():
        mask[np.flatnonzero(rowless), fallback_coordinates(keys[rowless], num_functions)] = True
    slot_nodes, slot_coordinates = np.nonzero(mask)

    # Gather every node's records once per chosen coordinate (flat layout).
    slot_sizes = sizes[slot_nodes]
    bounds = np.zeros(slot_nodes.size + 1, dtype=np.int64)
    np.cumsum(slot_sizes, out=bounds[1:])
    total = int(bounds[-1])
    flat = np.arange(total, dtype=np.int64) + np.repeat(
        offsets[slot_nodes] - bounds[:-1], slot_sizes
    )
    entry_records = records[flat]
    entry_slots = np.repeat(np.arange(slot_nodes.size, dtype=np.intp), slot_sizes)
    # ``matrix`` holds per-column dense ranks of the MinHash values (equal
    # rank ⟺ equal value within a coordinate), so slot and rank pack into a
    # single small sort key per entry — 32-bit while the key space fits.
    num_rows = matrix.shape[0]
    key_dtype = np.int32 if slot_nodes.size * num_rows <= np.iinfo(np.int32).max else np.int64
    slot_bases = (np.arange(slot_nodes.size, dtype=np.int64) * num_rows).astype(key_dtype)
    entry_keys = np.repeat(slot_bases, slot_sizes) + matrix[
        entry_records, slot_coordinates[entry_slots]
    ].astype(key_dtype, copy=False)

    # Stable sort: slot-major, grouped by MinHash value, ties in subset
    # order — so each group's first element is its first occurrence.
    order = np.argsort(entry_keys, kind="stable")
    sorted_keys = entry_keys[order]
    sorted_records = entry_records[order]
    boundary = np.empty(order.size, dtype=bool)
    if order.size:
        boundary[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    group_starts = np.flatnonzero(boundary)
    group_counts = np.diff(group_starts, append=order.size)
    group_slots = entry_slots[order[group_starts]]
    group_first = order[group_starts]  # first-occurrence entry index

    # Reference bucket order within a node: slot-ascending, then first
    # occurrence; buckets below two members cannot produce pairs.
    group_order = np.lexsort((group_first, group_slots))
    group_order = group_order[group_counts[group_order] >= 2]

    child_parents = slot_nodes[group_slots[group_order]]
    # Child rank = position among the parent's kept buckets (child_parents is
    # non-decreasing because group_order is slot-major).
    if child_parents.size:
        parent_change = np.empty(child_parents.size, dtype=bool)
        parent_change[0] = True
        np.not_equal(child_parents[1:], child_parents[:-1], out=parent_change[1:])
        run_starts = np.flatnonzero(parent_change)
        run_lengths = np.diff(run_starts, append=child_parents.size)
        child_ranks = np.arange(child_parents.size, dtype=np.int64) - np.repeat(
            run_starts, run_lengths
        )
    else:
        child_ranks = np.zeros(0, dtype=np.int64)
    child_keys = child_node_keys(keys[child_parents], child_ranks)

    child_counts = group_counts[group_order]
    child_offsets = np.zeros(child_counts.size + 1, dtype=np.int64)
    np.cumsum(child_counts, out=child_offsets[1:])
    flat_children = np.arange(int(child_offsets[-1]), dtype=np.int64) + np.repeat(
        group_starts[group_order] - child_offsets[:-1], child_counts
    )
    child_records = sorted_records[flat_children]
    return child_records, child_offsets, child_parents, child_ranks, child_keys


# ---------------------------------------------------------------------- walk
def _preorder_positions(
    level_counts: List[int], level_parents: List[np.ndarray]
) -> List[np.ndarray]:
    """Depth-first preorder rank of every node, computed level-wise.

    ``level_parents[lvl]`` maps each node of level ``lvl`` to its parent's
    index at ``lvl - 1`` and is non-decreasing (children are stored
    parent-major, in rank order).  Subtree sizes roll up bottom-up; a child's
    preorder rank is then its parent's rank plus one plus the subtree sizes
    of its earlier siblings — no per-node traversal required.
    """
    depth = len(level_counts)
    subtree: List[np.ndarray] = [np.ones(count, dtype=np.int64) for count in level_counts]
    for level in range(depth - 1, 0, -1):
        np.add.at(subtree[level - 1], level_parents[level], subtree[level])
    positions: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    for level in range(1, depth):
        parents = level_parents[level]
        sizes = subtree[level]
        before = np.cumsum(sizes) - sizes  # siblings-so-far, off by the run base
        first_child = np.empty(parents.size, dtype=bool)
        first_child[0] = True
        np.not_equal(parents[1:], parents[:-1], out=first_child[1:])
        run_starts = np.flatnonzero(first_child)
        run_lengths = np.diff(run_starts, append=parents.size)
        before -= np.repeat(before[run_starts], run_lengths)
        positions.append(positions[level - 1][parents] + 1 + before)
    return positions


def frontier_tasks(stage: "ChosenPathCandidateStage") -> List[Task]:
    """Run the level-synchronous walk; returns the reference DFS task stream.

    Implements all three stopping strategies with the exact node semantics of
    the recursive reference (see ``ChosenPathCandidateStage``), but evaluates
    each rule as a mask over the level and splits all surviving nodes in one
    :func:`_split_level` pass.  Task payloads are array slices of the level
    record arrays — the filter stages accept any integer sequence.
    """
    join = stage.join
    config = join.config
    collection = stage.collection
    stats = stage.stats
    estimator = stage.estimator
    matrix = collection.signature_rank_matrix()
    num_functions = collection.embedding_size
    probability = min(1.0, 1.0 / (join.embedded_threshold * num_functions))
    limit = config.limit
    stopping = config.stopping
    max_depth = config.max_depth
    root_entropy = stage.root_entropy
    cutoff = (1.0 - config.epsilon) * join.embedded_threshold

    stop_depth = 0
    record_depths: Optional[np.ndarray] = None
    if stopping == "global":
        stop_depth = join._global_depth(collection.num_records)
    elif stopping == "individual":
        all_records = list(range(collection.num_records))
        record_depths = np.asarray(
            join._individual_depths(all_records, estimator), dtype=np.int64
        )

    # Per-level node structure, kept for the final preorder emission.  A
    # node's entry in ``node_tasks`` is None, a single Task, or a list of
    # Tasks.
    level_parents: List[np.ndarray] = [np.array([0], dtype=np.int64)]
    level_tasks: List[List[object]] = []

    records = np.arange(collection.num_records, dtype=np.intp)
    offsets = np.array([0, records.size], dtype=np.int64)
    keys = np.array([root_node_key(root_entropy)], dtype=_UINT64)

    depth = 0
    while keys.size:
        num_nodes = keys.size
        sizes = np.diff(offsets)
        off = offsets.tolist()
        stats.add_extra("tree_nodes", float(num_nodes))
        stats.max_extra("max_depth", float(depth))
        node_tasks: List[object] = [None] * num_nodes
        survivor_nodes: List[int] = []
        survivor_parts: List[np.ndarray] = []

        if stopping == "adaptive":
            # BRUTEFORCE: subproblems at the limit are emitted whole (this
            # includes sub-pair subproblems, as in the reference, where the
            # size-two check runs after the brute-force step).
            small = sizes <= limit
            if small.any():
                for index in np.flatnonzero(small).tolist():
                    node_tasks[index] = SubsetCandidates(records[off[index] : off[index + 1]])
                stats.add_extra("bruteforce_pairs_calls", float(int(small.sum())))
            for index in np.flatnonzero(~small).tolist():
                subset = records[off[index] : off[index + 1]]
                averages = estimator.average_similarities(
                    subset,
                    method=config.average_method,
                    rng=estimator_rng(int(keys[index])),
                )
                remove = averages > cutoff
                if remove.any():
                    tasks: List[Task] = []
                    for position in np.flatnonzero(remove).tolist():
                        anchor = int(subset[position])
                        others = np.concatenate((subset[:position], subset[position + 1 :]))
                        if others.size:
                            tasks.append(PointCandidates(anchor, others))
                    stats.add_extra("bruteforce_point_calls", float(int(remove.sum())))
                    node_tasks[index] = tasks
                    subset = subset[~remove]
                    if subset.size <= limit:
                        tasks.append(SubsetCandidates(subset))
                        stats.add_extra("bruteforce_pairs_calls", 1.0)
                        continue
                # Still above the limit, hence at least two records.
                if depth >= max_depth:
                    tasks_here = node_tasks[index]
                    if tasks_here is None:
                        node_tasks[index] = SubsetCandidates(subset)
                    else:
                        tasks_here.append(SubsetCandidates(subset))
                    continue
                survivor_nodes.append(index)
                survivor_parts.append(subset)
        elif stopping == "global":
            alive = sizes >= 2
            stop = alive & ((sizes <= limit) | (depth >= stop_depth))
            for index in np.flatnonzero(stop).tolist():
                node_tasks[index] = SubsetCandidates(records[off[index] : off[index + 1]])
            for index in np.flatnonzero(alive & ~stop).tolist():
                survivor_nodes.append(index)
                survivor_parts.append(records[off[index] : off[index + 1]])
        else:  # individual
            assert record_depths is not None
            alive = sizes >= 2
            stop = alive & ((sizes <= limit) | (depth >= max_depth))
            for index in np.flatnonzero(stop).tolist():
                node_tasks[index] = SubsetCandidates(records[off[index] : off[index + 1]])
            expired = record_depths[records] <= depth
            for index in np.flatnonzero(alive & ~stop).tolist():
                subset = records[off[index] : off[index + 1]]
                expiring = expired[off[index] : off[index + 1]]
                if expiring.any():
                    tasks = []
                    for position in np.flatnonzero(expiring).tolist():
                        anchor = int(subset[position])
                        others = np.concatenate((subset[:position], subset[position + 1 :]))
                        if others.size:
                            tasks.append(PointCandidates(anchor, others))
                    node_tasks[index] = tasks
                    subset = subset[~expiring]
                    if subset.size < 2:
                        continue
                survivor_nodes.append(index)
                survivor_parts.append(subset)

        level_tasks.append(node_tasks)
        if not survivor_nodes:
            break
        child_records, child_offsets, child_parents_local, child_ranks, child_keys = _split_level(
            matrix, survivor_parts, keys[np.asarray(survivor_nodes)], num_functions, probability
        )
        level_parents.append(np.asarray(survivor_nodes, dtype=np.int64)[child_parents_local])
        records = child_records
        offsets = child_offsets
        keys = child_keys
        depth += 1

    # Emit in the depth-first preorder of the recursive reference: a node's
    # own tasks precede its children's, children in rank order.  The preorder
    # rank of every node is computed vectorized level-by-level; emission is
    # then a single pass over the task-bearing nodes in rank order.
    emitted: List[Task] = []
    if level_tasks:
        positions = _preorder_positions(
            [len(tasks) for tasks in level_tasks], level_parents[: len(level_tasks)]
        )
        bearer_positions: List[np.ndarray] = []
        bearer_tasks: List[object] = []
        for level, node_tasks in enumerate(level_tasks):
            indices = [index for index, tasks in enumerate(node_tasks) if tasks is not None]
            if indices:
                bearer_positions.append(positions[level][indices])
                bearer_tasks.extend(node_tasks[index] for index in indices)
        if bearer_tasks:
            order = np.argsort(np.concatenate(bearer_positions), kind="stable").tolist()
            for slot in order:
                tasks_here = bearer_tasks[slot]
                if type(tasks_here) is list:
                    emitted.extend(tasks_here)
                else:
                    emitted.append(tasks_here)
    return emitted
