"""CPSJOIN — Chosen Path Similarity Join (the paper's core contribution)."""

from repro.core.config import CPSJoinConfig
from repro.core.cpsjoin import CPSJoin, cpsjoin
from repro.core.preprocess import PreprocessedCollection, preprocess_collection
from repro.core.repetition import RepetitionDriver, RepetitionEngine, join_with_target_recall

__all__ = [
    "CPSJoinConfig",
    "CPSJoin",
    "cpsjoin",
    "PreprocessedCollection",
    "preprocess_collection",
    "RepetitionDriver",
    "RepetitionEngine",
    "join_with_target_recall",
]
