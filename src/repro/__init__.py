"""Reproduction of "Scalable and Robust Set Similarity Join" (ICDE 2018).

The package implements CPSJOIN — the Chosen Path Similarity Join of
Christiani, Pagh and Sivertsen — together with every substrate and baseline
the paper's evaluation depends on: MinHash and 1-bit minwise sketching,
prefix-filtering exact joins (ALLPAIRS, PPJOIN), approximate baselines
(MinHash LSH, BayesLSH-lite), dataset generators mirroring the paper's
workloads, and an experiment harness that regenerates every table and figure.

Quickstart::

    from repro import similarity_join

    records = [[1, 2, 3, 4], [2, 3, 4, 5], [10, 11, 12, 13]]
    result = similarity_join(records, threshold=0.5, algorithm="cpsjoin", seed=0)
    print(sorted(result.pairs))   # [(0, 1)]
"""

from repro.core.config import CPSJoinConfig
from repro.core.cpsjoin import CPSJoin, cpsjoin
from repro.datasets.base import Dataset
from repro.engine import JoinEngine
from repro.index import SimilarityIndex
from repro.join import ALGORITHMS, similarity_join, similarity_join_rs
from repro.result import JoinResult, JoinStats

__version__ = "1.1.0"

__all__ = [
    "CPSJoinConfig",
    "CPSJoin",
    "cpsjoin",
    "Dataset",
    "ALGORITHMS",
    "similarity_join",
    "similarity_join_rs",
    "SimilarityIndex",
    "JoinEngine",
    "JoinResult",
    "JoinStats",
    "__version__",
]
