"""Flat, process-shareable storage of preprocessing artefacts.

:class:`RecordStore` owns every artefact the join engines read (CSR tokens,
MinHash signatures, 1-bit sketches, sizes, R ⋈ S sides) as flat numpy
arrays, and can place them in a :mod:`multiprocessing.shared_memory` segment
(:meth:`RecordStore.to_shared`) that worker processes attach to zero-copy
(:meth:`RecordStore.attach`).  See :mod:`repro.store.record_store`.
"""

from repro.store.record_store import RecordStore, SharedStoreLease, StoreHandle

__all__ = ["RecordStore", "SharedStoreLease", "StoreHandle"]
