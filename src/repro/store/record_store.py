"""Flat, shareable storage of every preprocessing artefact.

The join engines never need the original Python record objects — every hot
kernel (size probe, sketch filter, exact verification, bucketing) reads flat
numpy arrays.  :class:`RecordStore` owns exactly those arrays:

* ``token_values`` / ``token_offsets`` — the CSR-packed sorted token sets
  (record ``i`` occupies ``token_values[token_offsets[i]:token_offsets[i+1]]``);
* ``signature_matrix`` — the ``(n, t)`` MinHash signatures of Section V-A.1;
* ``sketch_words`` — the packed ``(n, ℓ)`` 1-bit minwise sketches;
* ``sizes`` — per-record set sizes (redundant with the offsets, stored so
  filters never re-derive them);
* ``sides`` — optional R ⋈ S side labels.

Because the store is nothing but contiguous buffers, it can be placed in a
:mod:`multiprocessing.shared_memory` segment and *attached* by worker
processes with zero copying and zero pickling of record objects:

    lease = store.to_shared()          # parent: one copy into the segment
    handle = lease.handle              # tiny picklable description
    ...
    worker_store = RecordStore.attach(handle)   # worker: zero-copy views

The parent keeps only the :class:`SharedStoreLease` (segment + handle, no
array views), so closing and unlinking the segment never has to fight
exported numpy buffers.  Workers call :meth:`RecordStore.close` when done;
all lifecycle methods are idempotent and double-close safe.

Segment cleanup is explicit: the lease unlinks the segment on ``close()``.
Attached stores deliberately *unregister* the segment from the
``resource_tracker`` (``track=False`` on Python ≥ 3.13), because the tracker
would otherwise unlink the parent's segment when the first worker exits and
warn about "leaked" shared memory it never owned.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Record
from repro.hashing.minhash import MinHasher
from repro.hashing.sketch import build_sketches
from repro.result import Timer

__all__ = [
    "RecordStore",
    "SharedStoreLease",
    "StoreHandle",
    "normalize_records",
    "validate_sides",
]

_ALIGNMENT = 64
"""Byte alignment of each array inside a shared segment (cache-line sized)."""

_SHM_TRACK_KWARG = sys.version_info >= (3, 13)
"""Whether ``SharedMemory`` natively supports ``track=False`` (Python 3.13+)."""


def normalize_records(records: Sequence[Sequence[int]]) -> List[Record]:
    """Normalize records to sorted distinct-token tuples, rejecting empty ones.

    The single normalization/validation rule for every preprocessing entry
    point (:meth:`RecordStore.build` and
    :func:`repro.core.preprocess.preprocess_collection` share it), so all
    joins raise the same error for the same bad input.
    """
    normalized: List[Record] = [
        tuple(sorted(set(int(token) for token in record))) for record in records
    ]
    for index, record in enumerate(normalized):
        if not record:
            raise ValueError(f"record {index} is empty; empty records cannot be joined")
    return normalized


def validate_sides(sides: Optional[Sequence[int]], num_records: int) -> Optional[np.ndarray]:
    """Validate optional R ⋈ S side labels into an ``int8`` array (or None)."""
    if sides is None:
        return None
    side_array = np.asarray(list(sides), dtype=np.int8)
    if side_array.ndim != 1 or side_array.shape[0] != num_records:
        raise ValueError(
            f"sides must have one entry per record: got {side_array.shape[0]} sides "
            f"for {num_records} records"
        )
    if side_array.size and not np.isin(side_array, (0, 1)).all():
        raise ValueError("sides entries must be 0 (record in R) or 1 (record in S)")
    return side_array


def _open_segment(name: str, create: bool = False, size: int = 0):
    """Open a shared-memory segment, keeping the resource tracker honest.

    Creating processes stay registered (the tracker is their crash net).
    Attachments must not add a tracker registration of their own: on
    spawn-only platforms each worker runs its *own* tracker, which would
    unlink the parent's segment when the worker exits and then warn about a
    leak it caused itself (bpo-38119).  Python 3.13+ solves this with
    ``track=False``; earlier versions get the explicit unregister — but only
    where fork is unavailable, because fork children share the parent's
    tracker and an unregister there would strip the parent's own
    registration (the duplicate register from an attach is harmless: the
    tracker keeps a set).
    """
    from multiprocessing import shared_memory

    if _SHM_TRACK_KWARG and not create:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    segment = shared_memory.SharedMemory(name=name, create=create, size=size)
    if not create and "fork" not in __import__("multiprocessing").get_all_start_methods():
        try:  # pragma: no cover - spawn-only platforms
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    return segment


@dataclass(frozen=True)
class StoreHandle:
    """Picklable description of a :class:`RecordStore` living in shared memory.

    Carries everything a worker needs to rebuild zero-copy array views: the
    segment name plus, per array, its dtype string, shape, and byte offset.
    A handle is a few hundred bytes regardless of collection size — it is the
    *only* thing shipped to worker processes.
    """

    segment_name: str
    fields: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    preprocessing_seconds: float = 0.0


@dataclass
class SharedStoreLease:
    """Parent-side ownership of a shared-memory copy of a store.

    Holds the segment and its :class:`StoreHandle` but *no* numpy views, so
    ``close()`` can always release and unlink the segment without tripping
    over exported buffers.  ``close()`` is idempotent; the lease is also a
    context manager.
    """

    handle: StoreHandle
    _segment: object = field(repr=False, default=None)

    @property
    def closed(self) -> bool:
        return self._segment is None

    def close(self) -> None:
        """Release the parent's mapping and unlink the segment (idempotent)."""
        segment = self._segment
        if segment is None:
            return
        self._segment = None
        try:
            segment.close()
        finally:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "SharedStoreLease":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class RecordStore:
    """Every preprocessing artefact of a collection as flat numpy arrays.

    Built once per dataset (:meth:`build`) or attached zero-copy to a shared
    segment created by another process (:meth:`attach`).  The join engines
    read the arrays directly; :class:`repro.core.preprocess.PreprocessedCollection`
    is a thin compatibility view over a store.
    """

    _ARRAY_FIELDS = (
        "token_values",
        "token_offsets",
        "signature_matrix",
        "sketch_words",
        "sizes",
        "sides",
    )

    def __init__(
        self,
        token_values: np.ndarray,
        token_offsets: np.ndarray,
        signature_matrix: np.ndarray,
        sketch_words: np.ndarray,
        sizes: Optional[np.ndarray] = None,
        sides: Optional[np.ndarray] = None,
        preprocessing_seconds: float = 0.0,
        _segment: object = None,
    ) -> None:
        self.token_values = np.asarray(token_values, dtype=np.int64)
        self.token_offsets = np.asarray(token_offsets, dtype=np.int64)
        self.signature_matrix = np.asarray(signature_matrix, dtype=np.uint64)
        self.sketch_words = np.asarray(sketch_words, dtype=np.uint64)
        if sizes is None:
            sizes = np.diff(self.token_offsets)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.sides = None if sides is None else np.asarray(sides, dtype=np.int8)
        self.preprocessing_seconds = float(preprocessing_seconds)
        self._segment = _segment
        self._closed = False

        n = self.num_records
        if self.token_offsets.shape != (n + 1,):
            raise ValueError("token_offsets must have num_records + 1 entries")
        if self.sketch_words.shape[0] != n or self.sizes.shape[0] != n:
            raise ValueError("all per-record arrays must have one row per record")
        if self.sides is not None and self.sides.shape != (n,):
            raise ValueError("sides must have one entry per record")

    # ------------------------------------------------------------------ construction
    @classmethod
    def build(
        cls,
        records: Sequence[Sequence[int]],
        embedding_size: int = 128,
        sketch_words: int = 8,
        seed: Optional[int] = None,
        sides: Optional[Sequence[int]] = None,
    ) -> "RecordStore":
        """Preprocess a collection into a store (normalize, hash, sketch, pack).

        Equivalent to the historical ``preprocess_collection`` but producing
        flat arrays only; the hashing wall-clock lands in
        :attr:`preprocessing_seconds` exactly as before.
        """
        normalized = normalize_records(records)
        side_array = validate_sides(sides, len(normalized))
        return cls.from_records(
            normalized,
            embedding_size=embedding_size,
            sketch_words=sketch_words,
            seed=seed,
            sides=side_array,
        )

    @classmethod
    def from_records(
        cls,
        normalized: Sequence[Record],
        embedding_size: int = 128,
        sketch_words: int = 8,
        seed: Optional[int] = None,
        sides: Optional[np.ndarray] = None,
    ) -> "RecordStore":
        """Build a store from already normalized (sorted, distinct) records."""
        offsets = np.zeros(len(normalized) + 1, dtype=np.int64)
        np.cumsum([len(record) for record in normalized], out=offsets[1:])
        values = np.fromiter(
            (token for record in normalized for token in record),
            dtype=np.int64,
            count=int(offsets[-1]),
        )
        with Timer() as timer:
            minhasher = MinHasher(num_functions=embedding_size, seed=seed)
            signatures = minhasher.signatures(normalized)
            sketch_seed = None if seed is None else seed + 0x5EED
            sketches = build_sketches(signatures.matrix, num_words=sketch_words, seed=sketch_seed)
        return cls(
            token_values=values,
            token_offsets=offsets,
            signature_matrix=signatures.matrix,
            sketch_words=sketches.words,
            sides=sides,
            preprocessing_seconds=timer.elapsed,
        )

    # ------------------------------------------------------------------ basic accessors
    @property
    def num_records(self) -> int:
        return int(self.token_offsets.shape[0] - 1)

    @property
    def embedding_size(self) -> int:
        return int(self.signature_matrix.shape[1])

    @property
    def num_sketch_words(self) -> int:
        return int(self.sketch_words.shape[1])

    @property
    def is_shared(self) -> bool:
        """Whether this store's arrays view a shared-memory segment."""
        return self._segment is not None

    def record_tokens(self, record_id: int) -> np.ndarray:
        """Zero-copy view of one record's sorted tokens."""
        start = self.token_offsets[record_id]
        return self.token_values[start : self.token_offsets[record_id + 1]]

    def record_tuples(self) -> List[Record]:
        """Materialize the records as Python tuples (compatibility path only).

        The engines never call this; it exists for the scalar reference
        backend and for callers that want the original record objects back.
        """
        values = self.token_values.tolist()
        offsets = self.token_offsets.tolist()
        return [
            tuple(values[offsets[index] : offsets[index + 1]])
            for index in range(self.num_records)
        ]

    # ------------------------------------------------------------------ shared memory
    def _layout(self) -> Tuple[Tuple[Tuple[str, str, Tuple[int, ...], int], ...], int]:
        """Aligned (field, dtype, shape, byte offset) layout plus total size."""
        fields: List[Tuple[str, str, Tuple[int, ...], int]] = []
        cursor = 0
        for name in self._ARRAY_FIELDS:
            array = getattr(self, name)
            if array is None:
                continue
            cursor = (cursor + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
            fields.append((name, array.dtype.str, tuple(array.shape), cursor))
            cursor += array.nbytes
        return tuple(fields), max(cursor, 1)

    def to_shared(self) -> SharedStoreLease:
        """Copy every array into one shared-memory segment.

        Returns a :class:`SharedStoreLease`; ship ``lease.handle`` to worker
        processes and have them call :meth:`attach`.  The lease owns the
        segment: its ``close()`` unlinks it for good.
        """
        fields, total = self._layout()
        segment = _open_segment(self._unique_name(), create=True, size=total)
        try:
            for name, dtype, shape, offset in fields:
                source = np.ascontiguousarray(getattr(self, name))
                view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
                view[...] = source
                del view
            handle = StoreHandle(
                segment_name=segment.name,
                fields=fields,
                preprocessing_seconds=self.preprocessing_seconds,
            )
        except BaseException:
            segment.close()
            segment.unlink()
            raise
        return SharedStoreLease(handle=handle, _segment=segment)

    @staticmethod
    def _unique_name() -> str:
        """A segment name unique across processes and calls."""
        import os
        import secrets

        return f"repro_store_{os.getpid():x}_{secrets.token_hex(4)}"

    @classmethod
    def attach(cls, handle: StoreHandle) -> "RecordStore":
        """Attach zero-copy to a segment created by :meth:`to_shared`.

        The returned store's arrays are read-only views of the shared buffer;
        call :meth:`close` (idempotent) when the worker is done with them.
        """
        segment = _open_segment(handle.segment_name, create=False)
        arrays = {}
        for name, dtype, shape, offset in handle.fields:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
            view.setflags(write=False)
            arrays[name] = view
        store = cls(
            token_values=arrays["token_values"],
            token_offsets=arrays["token_offsets"],
            signature_matrix=arrays["signature_matrix"],
            sketch_words=arrays["sketch_words"],
            sizes=arrays.get("sizes"),
            sides=arrays.get("sides"),
            preprocessing_seconds=handle.preprocessing_seconds,
            _segment=segment,
        )
        return store

    def close(self) -> None:
        """Release an attached segment mapping (idempotent, double-close safe).

        Drops this store's array views first so the mapping can actually be
        released; a no-op for in-process (non-shared) stores.
        """
        if self._closed:
            return
        self._closed = True
        segment = self._segment
        if segment is None:
            return
        self._segment = None
        for name in self._ARRAY_FIELDS:
            setattr(self, name, None)
        try:
            segment.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass

    def __enter__(self) -> "RecordStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
