"""Reference execution backend: per-pair verification in pure Python.

This backend reproduces the seed implementation's semantics exactly: every
candidate surviving the size and sketch filters is verified with the
early-terminating merge of :func:`repro.similarity.verify.verify_pair_sorted`,
one pair at a time.  It is the correctness baseline the vectorized backends
are tested against.

The scalar merge wants plain Python tuples, so this backend reads the
collection's lazy ``records`` view — materialized from the record store's
CSR arrays at most once per process (a worker attaching a shared store pays
that O(total tokens) cost on first use, never per repetition).
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ExecutionBackend
from repro.similarity.verify import verify_pair_sorted, verify_pair_sorted_measure

__all__ = ["PythonBackend"]


class PythonBackend(ExecutionBackend):
    """Scalar verification backend (the seed semantics)."""

    name = "python"

    def verify_one_to_many(self, record_id: int, others: np.ndarray) -> np.ndarray:
        record = self.collection.records[record_id]
        records = self.collection.records
        accepted = np.zeros(others.size, dtype=bool)
        if self.measure.is_default:
            # Seed hot path, kept verbatim for the bit-parity guarantee.
            for position, other_id in enumerate(others):
                accepted[position] = verify_pair_sorted(
                    record, records[int(other_id)], self.threshold
                )[0]
        else:
            for position, other_id in enumerate(others):
                accepted[position] = verify_pair_sorted_measure(
                    record, records[int(other_id)], self.threshold, self.measure
                )[0]
        return accepted
