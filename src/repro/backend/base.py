"""Execution-backend interface for the verification hot paths.

Every join in the repository funnels its candidate pairs through the same
three-stage check (size-compatibility probe, 1-bit minwise sketch filter,
exact verification on the token sets) and estimates average similarities for
the adaptive BRUTEFORCE rule.  An :class:`ExecutionBackend` bundles those
kernels behind one interface so the policy layers (:class:`~repro.core.bruteforce.BruteForcer`,
the LSH baselines) stay agnostic of *how* the arithmetic is executed:

* :class:`~repro.backend.python_backend.PythonBackend` verifies candidates
  one pair at a time with the early-terminating merge of
  :func:`repro.similarity.verify.verify_pair_sorted` — the seed semantics.
* :class:`~repro.backend.numpy_backend.NumpyBackend` reads the CSR-packed
  token arrays straight out of the collection's
  :class:`repro.store.RecordStore` and verifies whole candidate blocks with
  vectorized ``searchsorted`` intersections — zero-copy even when the store
  lives in a shared-memory segment attached by a worker process.

Both backends are *exactly* equivalent: a pair is accepted if and only if its
true Jaccard similarity meets the threshold, so the verified pair sets (and
the pre-candidate / candidate / verified counters) are identical at seed
parity.  The property-test suite in ``tests/backend`` enforces this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, List, Sequence, Set, Tuple

import numpy as np

from repro.backend.kernels import sketch_estimates
from repro.core.preprocess import PreprocessedCollection
from repro.hashing.sketch import popcount_rows
from repro.result import canonical_pair
from repro.similarity.measures import Measure, get_measure

__all__ = ["ExecutionBackend"]

Pair = Tuple[int, int]


class ExecutionBackend(ABC):
    """Verification and estimation kernels bound to one preprocessed collection.

    Parameters
    ----------
    collection:
        The preprocessed records (token sets, signatures, sketches).
    threshold:
        Similarity threshold ``λ`` used by the exact verification kernels,
        on the measure's own scale.
    measure:
        The :class:`~repro.similarity.measures.Measure` verification runs
        under (name, instance or ``None`` for the default Jaccard).  With a
        weighted measure the size probe and the required-overlap bound use
        summed token weights instead of token counts.
    """

    name: ClassVar[str] = "abstract"

    def __init__(
        self,
        collection: PreprocessedCollection,
        threshold: float,
        measure: "Measure | str | None" = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.collection = collection
        self.threshold = threshold
        self.measure = get_measure(measure)
        self.sizes = collection.record_sizes()
        # Measure-sizes drive every filter and bound: identical to ``sizes``
        # for unweighted measures, per-record summed token weights otherwise.
        if self.measure.weighted:
            values, offsets = collection.packed_tokens()
            self._value_weights = self.measure.value_weights(values)
            if self.sizes.size:
                self.measure_sizes = np.add.reduceat(self._value_weights, offsets[:-1])
            else:
                self.measure_sizes = np.zeros(0, dtype=np.float64)
        else:
            self._value_weights = None
            self.measure_sizes = self.sizes
        # Side labels for R ⋈ S joins (None for a self-join).  When present,
        # same-side pairs are dropped before any counting or filtering, so
        # pre_candidates / candidates / verified only ever count cross-side
        # work and same-side candidates never reach verification.
        self.sides = collection.sides
        # Lazily built unpacked sketch-bit matrix for the sampled
        # average-similarity estimator (see average_similarity_sampled).
        self._sketch_bits: "np.ndarray | None" = None
        self._sketch_bytes: "np.ndarray | None" = None
        self._sketch_bits_built = False

    # ------------------------------------------------------------------ filtering
    def sketch_estimate_one_to_many(self, record_id: int, others: np.ndarray) -> np.ndarray:
        """Sketch-estimated Jaccard similarity of one record against many."""
        sketches = self.collection.sketches
        return sketch_estimates(sketches.words[record_id], sketches.words[others], sketches.num_bits)

    def _filter_one_to_many(
        self,
        record_id: int,
        others: np.ndarray,
        use_sketches: bool,
        sketch_cutoff: float,
    ) -> np.ndarray:
        """Candidates among ``others``: size probe plus optional sketch filter."""
        passing = self.measure.size_compatible(
            self.measure_sizes[record_id], self.measure_sizes[others], self.threshold
        )
        if use_sketches:
            estimates = self.sketch_estimate_one_to_many(record_id, others)
            passing &= estimates >= sketch_cutoff
        return others[passing]

    # ------------------------------------------------------------------ staged filtering (engine primitives)
    def filter_point(
        self,
        record_id: int,
        others: np.ndarray,
        use_sketches: bool,
        sketch_cutoff: float,
    ) -> Tuple[int, np.ndarray]:
        """Filter stage of BRUTEFORCEPOINT: side mask, size probe, sketch filter.

        Returns ``(pre_candidates, survivors)``: ``pre_candidates`` counts
        every considered pair (after the side mask — in a side-aware
        collection same-side pairs are not part of the workload) and
        ``survivors`` the ids that must be verified exactly.
        """
        others = np.asarray(others, dtype=np.intp)
        if self.sides is not None and others.size:
            others = others[self.sides[others] != self.sides[record_id]]
        pre_candidates = int(others.size)
        if pre_candidates == 0:
            return 0, others
        return pre_candidates, self._filter_one_to_many(record_id, others, use_sketches, sketch_cutoff)

    def filter_subset(
        self,
        subset: Sequence[int],
        use_sketches: bool,
        sketch_cutoff: float,
    ) -> Tuple[int, np.ndarray, np.ndarray]:
        """Filter stage of BRUTEFORCEPAIRS over every pair within ``subset``.

        Returns ``(pre_candidates, firsts, seconds)`` where the two id arrays
        hold the filter-surviving pairs awaiting exact verification.  The
        base implementation walks the subset row by row; backends may
        override it with a block kernel.
        """
        subset = list(subset)
        pre_candidates = 0
        firsts: List[int] = []
        seconds: List[int] = []
        for position, record_id in enumerate(subset):
            rest = subset[position + 1 :]
            if not rest:
                continue
            pre, passing = self.filter_point(
                record_id, np.asarray(rest, dtype=np.intp), use_sketches, sketch_cutoff
            )
            pre_candidates += pre
            firsts.extend([record_id] * int(passing.size))
            seconds.extend(int(other) for other in passing)
        return (
            pre_candidates,
            np.asarray(firsts, dtype=np.intp),
            np.asarray(seconds, dtype=np.intp),
        )

    # ------------------------------------------------------------------ exact verification
    @abstractmethod
    def verify_one_to_many(self, record_id: int, others: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``others`` truly meet the threshold against ``record_id``."""

    def verify_pairs(self, firsts: np.ndarray, seconds: np.ndarray) -> np.ndarray:
        """Exact verification of an arbitrary block of (first, second) pairs.

        Pairs are grouped by their first record so each group reduces to one
        one-to-many verification — vectorized in the numpy backend, a scalar
        loop in the python backend; either way the accepted mask is
        bit-for-bit identical.
        """
        firsts = np.asarray(firsts, dtype=np.intp)
        seconds = np.asarray(seconds, dtype=np.intp)
        accepted = np.zeros(firsts.size, dtype=bool)
        if firsts.size == 0:
            return accepted
        order = np.argsort(firsts, kind="stable")
        sorted_firsts = firsts[order]
        sorted_seconds = seconds[order]
        group_starts = np.flatnonzero(np.r_[True, sorted_firsts[1:] != sorted_firsts[:-1]])
        group_ends = np.r_[group_starts[1:], sorted_firsts.size]
        for start, end in zip(group_starts, group_ends):
            record_id = int(sorted_firsts[start])
            accepted[order[start:end]] = self.verify_one_to_many(
                record_id, sorted_seconds[start:end]
            )
        return accepted

    # ------------------------------------------------------------------ candidate pipelines
    def one_to_many(
        self,
        record_id: int,
        others: np.ndarray,
        use_sketches: bool,
        sketch_cutoff: float,
    ) -> Tuple[int, int, List[int]]:
        """Full pipeline for one record against many: filter, then verify.

        Returns ``(pre_candidates, verified, accepted_ids)`` where
        ``pre_candidates`` counts every considered pair and ``verified`` the
        pairs surviving the filters (and therefore exactly verified).  In a
        side-aware collection, same-side pairs are not considered at all.
        """
        pre_candidates, passing = self.filter_point(record_id, others, use_sketches, sketch_cutoff)
        if passing.size == 0:
            return pre_candidates, 0, []
        accepted = self.verify_one_to_many(record_id, passing)
        return pre_candidates, int(passing.size), [int(other) for other in passing[accepted]]

    def all_pairs(
        self,
        subset: Sequence[int],
        use_sketches: bool,
        sketch_cutoff: float,
    ) -> Tuple[int, int, Set[Pair]]:
        """Full pipeline for every pair within ``subset`` (BRUTEFORCEPAIRS).

        Expressed as the staged primitives run back to back:
        :meth:`filter_subset` followed by :meth:`verify_pairs`.  Returns
        ``(pre_candidates, verified, accepted_pairs)``.
        """
        pre_candidates, firsts, seconds = self.filter_subset(subset, use_sketches, sketch_cutoff)
        verified = int(firsts.size)
        if verified == 0:
            return pre_candidates, 0, set()
        mask = self.verify_pairs(firsts, seconds)
        accepted = {
            canonical_pair(int(first), int(second))
            for first, second in zip(firsts[mask], seconds[mask])
        }
        return pre_candidates, verified, accepted

    # ------------------------------------------------------------------ average similarity
    def average_similarity_exact(self, subset: List[int]) -> np.ndarray:
        """Exact average Braun–Blanquet similarity on the embedded sets (Algorithm 2).

        With ``count[j]`` the number of records in the subproblem containing
        embedded token ``j``, the average similarity of ``x`` to the rest is
        ``(1/(|S|-1)) Σ_{j ∈ f(x)} (count[j] - 1) / t``.
        """
        signatures = self.collection.signatures.matrix
        subset_array = np.asarray(subset, dtype=np.intp)
        sub_signatures = signatures[subset_array]  # (|S|, t)
        num_records, num_functions = sub_signatures.shape

        averages = np.zeros(num_records)
        # count[(i, value)] is computed column by column: within coordinate i,
        # records sharing the same MinHash value share the embedded token.
        for coordinate in range(num_functions):
            column = sub_signatures[:, coordinate]
            unique_values, inverse, counts = np.unique(column, return_inverse=True, return_counts=True)
            averages += (counts[inverse] - 1) / num_functions
        return averages / (num_records - 1)

    def _sketch_bits_matrix(self) -> "np.ndarray | None":
        """Per-record sketch bits as a float32 (n, num_bits) matrix (or None).

        Cached on the collection (shared by every repetition's backend); the
        matvec identity below turns the per-node estimator of the adaptive
        rule from ``m`` XOR/popcount passes over the subset words into a
        single BLAS pass over the subset bits.  Collections whose bit matrix
        would exceed the collection's memory budget fall back to the word
        loop (None).
        """
        if not self._sketch_bits_built:
            self._sketch_bits_built = True
            self._sketch_bits = self.collection.sketch_bit_matrix()
            if self._sketch_bits is not None:
                self._sketch_bytes = np.ascontiguousarray(
                    self.collection.sketches.words
                ).view(np.uint8)
        return self._sketch_bits

    def average_similarity_sampled(
        self, subset: List[int], sample_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sampled sketch estimate of the average similarity (Section V-A.4).

        The summed Hamming distance of a sketch ``x`` against the ``m``
        sampled sketches decomposes bit-wise:

        ``Σ_s popcount(x ^ s) = Σ_b c_b + Σ_{b : x_b = 1} (m - 2 c_b)``

        with ``c_b`` the number of sampled sketches with bit ``b`` set.  The
        second term is a dot product of the record's unpacked bits against a
        per-bit weight vector, so the whole subset reduces to one matrix ×
        vector product over the cached bit matrix.  All intermediate values
        are small integers (≤ ``m · num_bits``), exactly representable in
        float32, so the totals — and therefore the returned averages — are
        bit-for-bit identical to the XOR/popcount word loop used as the
        large-collection fallback.
        """
        sketches = self.collection.sketches
        subset_array = np.asarray(subset, dtype=np.intp)
        sample_count = min(sample_size, len(subset))
        # Sampling positions (not record ids) draws the identical sample —
        # Generator.choice on an array samples indices into it — and makes
        # the self-term correction below a direct index instead of a value
        # lookup over the whole subset.
        positions = rng.choice(len(subset_array), size=sample_count, replace=False)
        sample = subset_array[positions]

        bits = self._sketch_bits_matrix()
        if bits is not None:
            # Gather the packed sample bytes (ℓ·8 per sketch, 32× less
            # traffic than the float32 rows) and count column bits there.
            sample_bits = np.unpackbits(self._sketch_bytes[sample], axis=1)
            column_counts = sample_bits.sum(axis=0, dtype=np.int64)  # c_b
            weights = (sample_count - 2.0 * column_counts).astype(np.float32)
            if subset_array.size * 4 >= bits.shape[0]:
                # Near-root subproblems: one gemv over the whole matrix beats
                # gathering most of its rows first.  Identical totals either
                # way — every row dot is the same exact small-integer sum.
                totals = (bits @ weights)[subset_array]
            else:
                # Gather the packed bytes (ℓ·8 per record) and unpack just the
                # subset — 32× less random-access traffic than gathering the
                # float32 rows, for the same exact bit values.
                subset_bits = np.unpackbits(self._sketch_bytes[subset_array], axis=1)
                totals = subset_bits.astype(np.float32) @ weights  # exact: sums ≤ m·num_bits < 2^24
            totals = totals.astype(np.float64) + float(column_counts.sum(dtype=np.float64))
        else:
            subset_words = sketches.words[subset_array]  # (|S|, ℓ)
            sample_words = sketches.words[sample]  # (m, ℓ)
            # Iterating over the (at most ``sample_size``) sampled sketches
            # keeps the temporaries at |S| × ℓ words instead of materializing
            # the full |S| × m × ℓ broadcast.
            totals = np.zeros(len(subset), dtype=np.int64)
            for sample_row in sample_words:
                totals += popcount_rows(subset_words ^ sample_row)
            totals = totals.astype(np.float64)
        averages = 1.0 - 2.0 * totals / (sample_count * sketches.num_bits)

        # A sampled record sees itself in its own sample; remove the
        # (similarity = 1) self term from its mean.
        if sample_count > 1:
            averages[positions] = (averages[positions] * sample_count - 1.0) / (sample_count - 1)
        return averages
