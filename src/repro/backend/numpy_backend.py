"""Vectorized execution backend: block verification with numpy.

The hot loops of the BRUTEFORCE step — exact verification of candidate pairs
and the pairwise sketch filter — are executed over whole candidate blocks:

* Token sets are packed once per collection into CSR-style arrays
  (:meth:`repro.core.preprocess.PreprocessedCollection.packed_tokens`); the
  intersection of one record with a block of candidates is a single
  ``searchsorted`` over the concatenated candidate tokens followed by a
  segmented sum (:func:`repro.backend.kernels.csr_overlaps_one_to_many`,
  shared with the :class:`repro.index.SimilarityIndex` query kernels).
* The BRUTEFORCEPAIRS filter stage materializes the upper triangle of a
  subproblem, applies the size probe and the 1-bit sketch Hamming filter
  (``np.bitwise_xor`` + byte popcount table) to all pairs at once; the
  surviving pairs are verified by the grouped block verifier of the base
  class.

Acceptance is decided with the same integer overlap bound
(:func:`repro.similarity.measures.required_overlap_for_jaccard`) as the
scalar backend, so the verified pair sets are bit-for-bit identical.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.backend.base import ExecutionBackend
from repro.backend.kernels import csr_overlaps_one_to_many, csr_weighted_overlaps_one_to_many
from repro.core.preprocess import PreprocessedCollection
from repro.hashing.sketch import _HAS_BITWISE_COUNT, popcount_rows
from repro.similarity.measures import Measure

__all__ = ["NumpyBackend"]


@lru_cache(maxsize=64)
def _triu_indices(num_records: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached upper-triangle index pair for subsets of a given size.

    The BRUTEFORCEPAIRS filter is called on thousands of subproblems capped
    at the same ``limit``, so the index arrays repeat constantly.  The cache
    is bounded: each entry costs two ``n(n-1)/2`` index arrays, so an
    unbounded cache over all sizes up to :attr:`NumpyBackend.BLOCK_ROW_LIMIT`
    could pin hundreds of megabytes in a long experiment process.
    """
    first, second = np.triu_indices(num_records, k=1)
    first.setflags(write=False)
    second.setflags(write=False)
    return first, second


class NumpyBackend(ExecutionBackend):
    """Vectorized verification backend over CSR-packed token arrays."""

    name = "numpy"

    # Above this subset size the all-pairs block kernel falls back to the
    # row-by-row pipeline (still vectorized per row) to bound the memory of
    # the materialized upper triangle.
    BLOCK_ROW_LIMIT = 512

    # At or below this subset size the all-pairs filter uses a scalar path:
    # the recursion produces thousands of tiny buckets for which Python
    # integer sketch arithmetic beats the fixed cost of numpy dispatches.
    SMALL_ROW_LIMIT = 12

    def __init__(
        self,
        collection: PreprocessedCollection,
        threshold: float,
        measure: "Measure | str | None" = None,
    ) -> None:
        super().__init__(collection, threshold, measure)
        self._values, self._offsets = collection.packed_tokens()
        self._measure_size_list = self.measure_sizes.tolist()
        self._sketch_ints = collection.sketch_bigints()
        self._sketch_distance_bounds: dict = {}

    # ------------------------------------------------------------------ exact verification
    def _record_tokens(self, record_id: int) -> np.ndarray:
        start = self._offsets[record_id]
        return self._values[start : start + self.sizes[record_id]]

    def _overlaps_one_to_many(self, record_id: int, others: np.ndarray) -> np.ndarray:
        """Exact (possibly weighted) overlaps of one record against a block."""
        if self._value_weights is not None:
            return csr_weighted_overlaps_one_to_many(
                self._record_tokens(record_id),
                self._values,
                self._value_weights,
                self._offsets,
                self.sizes,
                others,
            )
        return csr_overlaps_one_to_many(
            self._record_tokens(record_id), self._values, self._offsets, self.sizes, others
        )

    def _required_overlaps(self, record_id: int, others: np.ndarray) -> np.ndarray:
        return self.measure.required_overlaps(
            self.measure_sizes[record_id], self.measure_sizes[others], self.threshold
        )

    def _max_sketch_distance(self, sketch_cutoff: float) -> int:
        """Largest sketch Hamming distance whose estimate passes the cut-off.

        The estimate ``1 - 2d/num_bits`` is an exact dyadic rational
        (``num_bits`` is a power of two), so comparing the integer distance
        against this precomputed bound is bit-for-bit equivalent to the float
        comparison ``estimate >= sketch_cutoff`` the scalar path performs —
        the bound is derived by running that exact comparison per distance.
        """
        cached = self._sketch_distance_bounds.get(sketch_cutoff)
        if cached is not None:
            return cached
        num_bits = self.collection.sketches.num_bits
        distances = np.arange(num_bits + 1)
        passing = (1.0 - 2.0 * distances / num_bits) >= sketch_cutoff
        bound = int(np.flatnonzero(passing).max(initial=-1))
        self._sketch_distance_bounds[sketch_cutoff] = bound
        return bound

    def verify_one_to_many(self, record_id: int, others: np.ndarray) -> np.ndarray:
        others = np.asarray(others, dtype=np.intp)
        if others.size == 0:
            return np.zeros(0, dtype=bool)
        overlaps = self._overlaps_one_to_many(record_id, others)
        return overlaps >= self._required_overlaps(record_id, others)

    # ------------------------------------------------------------------ all-pairs block filter
    def filter_subset(
        self,
        subset: Sequence[int],
        use_sketches: bool,
        sketch_cutoff: float,
    ) -> Tuple[int, np.ndarray, np.ndarray]:
        subset = list(subset)
        num_records = len(subset)
        empty = np.zeros(0, dtype=np.intp)
        if num_records < 2:
            return 0, empty, empty
        if num_records <= self.SMALL_ROW_LIMIT:
            return self._filter_subset_small(subset, use_sketches, sketch_cutoff)
        if num_records > self.BLOCK_ROW_LIMIT:
            return super().filter_subset(subset, use_sketches, sketch_cutoff)

        ids = np.asarray(subset, dtype=np.intp)
        first_pos, second_pos = _triu_indices(num_records)
        if self.sides is not None:
            # Side mask first: in an R ⋈ S join same-side pairs are not part
            # of the workload, so they are dropped before the size probe and
            # the sketch filter and never counted as pre-candidates.
            subset_sides = self.sides[ids]
            cross = subset_sides[first_pos] != subset_sides[second_pos]
            first_pos, second_pos = first_pos[cross], second_pos[cross]
        pre_candidates = int(first_pos.size)
        if pre_candidates == 0:
            return 0, empty, empty

        sizes = self.measure_sizes[ids]
        passing = self.measure.size_compatible(sizes[first_pos], sizes[second_pos], self.threshold)
        first_pos, second_pos = first_pos[passing], second_pos[passing]

        if use_sketches and first_pos.size:
            sketches = self.collection.sketches
            words = sketches.words[ids]
            # The gathered pair block is a private temporary, so the XOR and
            # the popcount both run in place to avoid further allocations.
            xored = words[first_pos]
            np.bitwise_xor(xored, words[second_pos], out=xored)
            if _HAS_BITWISE_COUNT:
                np.bitwise_count(xored, out=xored)
                distances = xored.sum(axis=1, dtype=np.int64)
            else:
                distances = popcount_rows(xored)
            surviving = distances <= self._max_sketch_distance(sketch_cutoff)
            first_pos, second_pos = first_pos[surviving], second_pos[surviving]

        return pre_candidates, ids[first_pos], ids[second_pos]

    def _filter_subset_small(
        self,
        subset: List[int],
        use_sketches: bool,
        sketch_cutoff: float,
    ) -> Tuple[int, np.ndarray, np.ndarray]:
        """Scalar all-pairs filter for tiny subproblems.

        Arithmetically identical to the block kernel: the same size probe and
        the same sketch estimate ``1 - 2d/num_bits`` (evaluated on the same
        IEEE doubles, with the Hamming distance taken by ``int.bit_count``
        on the cached big-integer sketches).
        """
        num_records = len(subset)
        sides = self.sides
        if sides is None:
            pre_candidates = num_records * (num_records - 1) // 2
        else:
            # Only cross-side pairs count: with n₀ R-records and n₁ S-records
            # in the subset, the workload is n₀ · n₁ pairs.
            num_right = int(np.count_nonzero(sides[np.asarray(subset, dtype=np.intp)]))
            pre_candidates = num_right * (num_records - num_right)
        firsts: List[int] = []
        seconds: List[int] = []
        sizes = self._measure_size_list
        sketch_ints = self._sketch_ints
        num_bits = self.collection.sketches.num_bits
        threshold = self.threshold
        size_compatible_one = self.measure.size_compatible_one
        for position in range(num_records):
            record_id = subset[position]
            size_first = sizes[record_id]
            for other_position in range(position + 1, num_records):
                other_id = subset[other_position]
                if sides is not None and sides[record_id] == sides[other_id]:
                    continue
                size_second = sizes[other_id]
                if not size_compatible_one(size_first, size_second, threshold):
                    continue
                if use_sketches:
                    distance = (sketch_ints[record_id] ^ sketch_ints[other_id]).bit_count()
                    if 1.0 - 2.0 * distance / num_bits < sketch_cutoff:
                        continue
                firsts.append(record_id)
                seconds.append(other_id)
        return (
            pre_candidates,
            np.asarray(firsts, dtype=np.intp),
            np.asarray(seconds, dtype=np.intp),
        )
