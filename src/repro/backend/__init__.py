"""Pluggable execution backends for the verification hot paths.

``make_backend`` is the registry entry point used by
:class:`repro.core.bruteforce.BruteForcer` and the LSH baselines::

    backend = make_backend("numpy", collection, threshold)

Two backends ship with the reproduction:

* ``"python"`` — :class:`~repro.backend.python_backend.PythonBackend`, the
  seed's per-pair verification semantics (reference implementation).
* ``"numpy"`` — :class:`~repro.backend.numpy_backend.NumpyBackend`,
  vectorized block verification over CSR-packed token arrays.

Both produce identical verified pair sets and statistics; they differ only
in throughput.  See ``tests/backend`` for the equivalence suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Type, Union

from repro.backend.base import ExecutionBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.python_backend import PythonBackend
from repro.core.preprocess import PreprocessedCollection
from repro.similarity.measures import Measure

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "NumpyBackend",
    "PythonBackend",
    "make_backend",
]

_REGISTRY: Dict[str, Type[ExecutionBackend]] = {
    PythonBackend.name: PythonBackend,
    NumpyBackend.name: NumpyBackend,
}

BACKEND_NAMES = tuple(sorted(_REGISTRY))
"""Names accepted by ``backend=`` arguments throughout the library."""

DEFAULT_BACKEND = PythonBackend.name
"""Backend used when none is requested (the reference semantics)."""


def make_backend(
    backend: Union[str, ExecutionBackend, None],
    collection: PreprocessedCollection,
    threshold: float,
    measure: Optional[Union[str, Measure]] = None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance) for a collection.

    Parameters
    ----------
    backend:
        A registered backend name (``"python"`` / ``"numpy"``), an already
        constructed :class:`ExecutionBackend` (returned as-is), or ``None``
        for :data:`DEFAULT_BACKEND`.
    collection, threshold:
        The preprocessed collection and similarity threshold the kernels
        bind to.
    measure:
        Similarity measure (name, :class:`~repro.similarity.measures.Measure`
        or ``None`` for Jaccard) the verification kernels score under.
        Ignored when ``backend`` is an already constructed instance.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = DEFAULT_BACKEND if backend is None else str(backend).lower()
    if name not in _REGISTRY:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}")
    return _REGISTRY[name](collection, threshold, measure)
