"""Shared vectorized verification kernels over CSR-packed token arrays.

The numpy execution backend and the :class:`repro.index.SimilarityIndex`
both verify candidates with the same primitive: the exact intersection size
of one sorted token array against a block of CSR-packed records, reduced via
``searchsorted`` plus a segmented sum.  The kernels live here so the two can
never diverge — the backend binds them to a
:class:`~repro.core.preprocess.PreprocessedCollection`, the index binds them
to its own incrementally grown arrays.

Acceptance is always decided with the integer overlap bound
``|x ∩ y| ≥ ⌈λ/(1+λ)(|x| + |y|)⌉``
(:func:`repro.similarity.measures.required_overlap_for_jaccard` evaluated
vectorized), so scalar and vectorized callers agree on every borderline pair.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.sketch import popcount_rows

__all__ = [
    "csr_overlaps_one_to_many",
    "csr_weighted_overlaps_one_to_many",
    "group_rows_first_occurrence",
    "overlap_jaccard",
    "required_overlaps",
    "size_compatible_mask",
    "sketch_estimates",
]


def size_compatible_mask(
    first_sizes: np.ndarray, second_sizes: np.ndarray, threshold: float
) -> np.ndarray:
    """Size-compatibility probe: ``J(x, y) ≥ λ`` forces ``λ ≤ |y|/|x| ≤ 1/λ``.

    Broadcasts, so either side may be a scalar.  Every filter stage in the
    repository (engine, backends, index) evaluates exactly this expression.
    """
    return (second_sizes >= threshold * first_sizes) & (first_sizes >= threshold * second_sizes)


def sketch_estimates(
    first_words: np.ndarray, second_words: np.ndarray, num_bits: int
) -> np.ndarray:
    """1-bit minwise sketch similarity estimates ``1 - 2·hamming/num_bits``.

    ``first_words`` / ``second_words`` broadcast (one sketch row against a
    block, or two aligned blocks).
    """
    distances = popcount_rows(first_words ^ second_words)
    return 1.0 - 2.0 * distances / num_bits


def csr_overlaps_one_to_many(
    query_tokens: np.ndarray,
    values: np.ndarray,
    offsets: np.ndarray,
    sizes: np.ndarray,
    others: np.ndarray,
) -> np.ndarray:
    """Exact intersection sizes of one sorted token array against a CSR block.

    Parameters
    ----------
    query_tokens:
        Sorted token array of the probing record.
    values, offsets:
        CSR-packed token sets: record ``i`` occupies
        ``values[offsets[i] : offsets[i] + sizes[i]]`` (sorted).
    sizes:
        Per-record set sizes (indexable by the ids in ``others``).
    others:
        Record ids to intersect the query against.
    """
    query_tokens = np.asarray(query_tokens, dtype=values.dtype)
    others = np.asarray(others, dtype=np.intp)
    if others.size == 0:
        return np.zeros(0, dtype=np.int64)
    if query_tokens.size == 0:
        return np.zeros(others.size, dtype=np.int64)
    if others.size == 1:
        # Fast path for the very common singleton candidate block.
        other = int(others[0])
        tokens = values[offsets[other] : offsets[other] + sizes[other]]
        positions = np.searchsorted(query_tokens, tokens)
        matches = positions < query_tokens.size
        matches &= query_tokens[np.minimum(positions, query_tokens.size - 1)] == tokens
        return np.array([int(np.count_nonzero(matches))], dtype=np.int64)
    starts = offsets[others]
    lengths = sizes[others]
    boundaries = np.zeros(others.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=boundaries[1:])
    # Flat indices of every token of every candidate in the packed array.
    flat_index = np.arange(boundaries[-1], dtype=np.int64) + np.repeat(
        starts - boundaries[:-1], lengths
    )
    tokens = values[flat_index]

    positions = np.searchsorted(query_tokens, tokens)
    matches = positions < query_tokens.size
    matches &= query_tokens[np.minimum(positions, query_tokens.size - 1)] == tokens
    return np.add.reduceat(matches.astype(np.int64), boundaries[:-1])


def csr_weighted_overlaps_one_to_many(
    query_tokens: np.ndarray,
    values: np.ndarray,
    value_weights: np.ndarray,
    offsets: np.ndarray,
    sizes: np.ndarray,
    others: np.ndarray,
) -> np.ndarray:
    """Weighted intersections of one sorted token array against a CSR block.

    The weighted twin of :func:`csr_overlaps_one_to_many`: instead of
    *counting* matched tokens it sums their weights (``value_weights`` is
    aligned element-for-element with ``values``), which is the overlap a
    weighted :class:`~repro.similarity.measures.Measure` plugs into its
    required-overlap bound.  Returns float64 sums.
    """
    query_tokens = np.asarray(query_tokens, dtype=values.dtype)
    others = np.asarray(others, dtype=np.intp)
    if others.size == 0:
        return np.zeros(0, dtype=np.float64)
    if query_tokens.size == 0:
        return np.zeros(others.size, dtype=np.float64)
    if others.size == 1:
        other = int(others[0])
        start = offsets[other]
        stop = start + sizes[other]
        tokens = values[start:stop]
        positions = np.searchsorted(query_tokens, tokens)
        matches = positions < query_tokens.size
        matches &= query_tokens[np.minimum(positions, query_tokens.size - 1)] == tokens
        return np.array([float(value_weights[start:stop][matches].sum())], dtype=np.float64)
    starts = offsets[others]
    lengths = sizes[others]
    boundaries = np.zeros(others.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=boundaries[1:])
    flat_index = np.arange(boundaries[-1], dtype=np.int64) + np.repeat(
        starts - boundaries[:-1], lengths
    )
    tokens = values[flat_index]

    positions = np.searchsorted(query_tokens, tokens)
    matches = positions < query_tokens.size
    matches &= query_tokens[np.minimum(positions, query_tokens.size - 1)] == tokens
    return np.add.reduceat(np.where(matches, value_weights[flat_index], 0.0), boundaries[:-1])


def required_overlaps(
    query_size: int, other_sizes: np.ndarray, overlap_ratio: float
) -> np.ndarray:
    """Vectorized ``⌈λ/(1+λ)(|x| + |y|)⌉`` with the backend's epsilon guard.

    ``overlap_ratio`` is the precomputed ``λ / (1 + λ)``; the ``1e-9`` slack
    mirrors :func:`repro.similarity.measures.required_overlap_for_jaccard` so
    float rounding can never flip a borderline pair.
    """
    sums = query_size + np.asarray(other_sizes)
    return np.ceil(overlap_ratio * sums - 1e-9).astype(np.int64)


def group_rows_first_occurrence(keys: np.ndarray, min_size: int = 1) -> "list[np.ndarray]":
    """Group the rows of a key matrix by identical key tuples, column-wise.

    ``keys`` is ``(n, k)``; rows whose entire key tuple matches land in the
    same group.  The output order is bit-identical to the insertion-ordered
    dict loop it replaces: groups appear in order of their first occurring
    row, members within a group in ascending row order; groups smaller than
    ``min_size`` are dropped.  ``k = 0`` keys put every row in one group.

    The pass is a single multi-column stable lexsort plus boundary scans —
    no Python-level hashing of row tuples.
    """
    keys = np.asarray(keys)
    num_rows = keys.shape[0]
    if num_rows == 0:
        return []
    if keys.ndim != 2:
        raise ValueError("keys must be a 2-D (rows, columns) array")
    if keys.shape[1] == 0:
        all_rows = np.arange(num_rows, dtype=np.intp)
        return [all_rows] if num_rows >= min_size else []
    # Last lexsort key is primary, so feed the columns right-to-left; the
    # sort is stable, leaving equal rows in ascending row order.
    order = np.lexsort(keys.T[::-1]).astype(np.intp, copy=False)
    sorted_keys = keys[order]
    boundary = np.empty(num_rows, dtype=bool)
    boundary[0] = True
    np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1, out=boundary[1:])
    group_starts = np.flatnonzero(boundary)
    group_counts = np.diff(group_starts, append=num_rows)
    keep = group_counts >= min_size
    # First-occurrence order: a group's first member is its smallest row
    # index (stable sort), so sorting groups by that index reproduces the
    # insertion order of the scalar dict loop.
    first_rows = order[group_starts[keep]]
    emit = np.argsort(first_rows, kind="stable")
    starts = group_starts[keep][emit]
    counts = group_counts[keep][emit]
    return [order[start : start + count] for start, count in zip(starts.tolist(), counts.tolist())]


def overlap_jaccard(query_size: int, other_sizes: np.ndarray, overlaps: np.ndarray) -> np.ndarray:
    """Exact Jaccard similarities from intersection sizes (``|∩| / |∪|``)."""
    overlaps = np.asarray(overlaps, dtype=np.float64)
    unions = query_size + np.asarray(other_sizes, dtype=np.float64) - overlaps
    with np.errstate(invalid="ignore", divide="ignore"):
        similarity = np.where(unions > 0, overlaps / np.maximum(unions, 1.0), 1.0)
    return similarity
