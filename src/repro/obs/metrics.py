"""Metrics registry: counters, gauges, and fixed-bucket latency histograms.

The registry is the numeric half of the observability layer (spans are the
causal half, :mod:`repro.obs.tracing`).  Three metric kinds cover everything
the serving stack needs:

* :class:`Counter` — a monotone total (requests served, pairs verified).
* :class:`Gauge` — a point-in-time level (queue depth, RSS bytes).
* :class:`Histogram` — a fixed-bucket latency distribution.  Buckets are
  cumulative counts over shared boundaries, so histograms recorded by
  different thread or process workers **merge exactly** (element-wise sums);
  quantiles are then estimated from the merged buckets.

Snapshots are plain JSON-safe dictionaries.  Everything renders to
Prometheus-style text exposition via :func:`render_exposition`, and two
snapshots combine with :func:`merge_snapshots` — which is how per-worker
registries (or a server's registry plus the process-global one) aggregate
without sharing locks.

Nothing here touches randomness or global state: a registry is an ordinary
object, and the process-global convenience instance lives in
:mod:`repro.obs` so library code can check "is anyone listening?" with one
read.
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_metrics",
    "disable_metrics",
    "enable_metrics",
    "merge_snapshots",
    "metric_name",
    "percentile",
    "render_exposition",
]

#: Default latency bucket upper bounds, in seconds.  Chosen to resolve the
#: service's operating range (sub-millisecond point lookups up to multi-second
#: overloaded batches); everything slower lands in the +Inf overflow bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

LabelPairs = Tuple[Tuple[str, str], ...]


def metric_name(raw: str) -> str:
    """Coerce an arbitrary key into a valid Prometheus metric-name fragment.

    Used when dynamic keys (``JoinStats.extra`` entries) become metric names:
    invalid characters collapse to ``_`` and a leading digit gets a ``_``
    prefix, so ``"1bit-sketch hits"`` → ``"_1bit_sketch_hits"``.
    """
    cleaned = _NAME_SANITIZE.sub("_", raw)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted sample.

    The shared helper behind serve-bench's client-side latency columns (the
    server-side ones come from histogram buckets via
    :meth:`Histogram.quantile`).  Returns 0.0 for an empty sample.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[rank]


def _label_pairs(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc by {amount!r})")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Set the absolute total, enforcing monotonicity.

        Used to mirror externally maintained counters (the server's plain
        ``self.counters`` dict) into the registry: a decrease means the
        source violated its own monotone contract, so it raises rather than
        silently regressing the series.
        """
        with self._lock:
            if value < self._value:
                raise ValueError(
                    f"counter {self.name} cannot decrease ({self._value!r} -> {value!r})"
                )
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A level that can go up and down (queue depth, memory, uptime)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (used for ``max_``-style depth stats)."""
        with self._lock:
            self._value = max(self._value, float(value))

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary histogram with exact cross-worker merging.

    ``boundaries`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last boundary.  Because the boundaries are
    fixed at construction, two histograms recorded independently (different
    threads, different processes, different scrapes) merge exactly by adding
    counts element-wise — the foundation for aggregating executor fan-out.
    """

    __slots__ = ("name", "labels", "boundaries", "_counts", "_sum", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram boundaries must be strictly increasing: {bounds!r}")
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` falls into (last index = overflow)."""
        return bisect_left(self.boundaries, value)

    def observe(self, value: float) -> None:
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    def merge(self, other: "Histogram") -> None:
        """Add another histogram's observations into this one (exact)."""
        if other.boundaries != self.boundaries:
            raise ValueError(
                f"cannot merge histograms with different boundaries "
                f"({self.name}: {self.boundaries!r} vs {other.name}: {other.boundaries!r})"
            )
        counts, total = other.counts_and_sum()
        self.merge_counts(counts, total)

    def merge_counts(self, counts: Sequence[int], value_sum: float) -> None:
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name}: expected {len(self._counts)} bucket counts, "
                f"got {len(counts)}"
            )
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += int(count)
            self._sum += float(value_sum)

    def counts_and_sum(self) -> Tuple[List[int], float]:
        with self._lock:
            return list(self._counts), self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from bucket counts.

        Linear interpolation inside the containing bucket — the estimate is
        therefore off by at most one bucket width, which is the precision
        contract the serve-bench comparison tests assert.  Observations in
        the overflow bucket report the last finite boundary (there is no
        upper edge to interpolate toward).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        counts, _ = self.counts_and_sum()
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                if index >= len(self.boundaries):
                    return self.boundaries[-1]
                lower = self.boundaries[index - 1] if index > 0 else 0.0
                upper = self.boundaries[index]
                fraction = (rank - previous) / count if count else 0.0
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.boundaries[-1]

    @classmethod
    def from_snapshot(cls, series: Mapping[str, Any], name: str = "histogram") -> "Histogram":
        """Rebuild a histogram from one snapshot series (see ``snapshot()``).

        Serve-bench uses this to turn a scraped ``metrics`` payload back
        into a quantile-capable object.
        """
        histogram = cls(name, boundaries=tuple(series["boundaries"]))
        histogram.merge_counts(series["counts"], float(series.get("sum", 0.0)))
        return histogram


Metric = Any  # Counter | Gauge | Histogram


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metric families are identified by name; within a family, series are
    keyed by their (sorted) label pairs.  Lookups upsert, so call sites can
    just write ``registry.counter("repro_x_total", op="query").inc()`` on
    the hot path — after the first call it is two dict lookups and an add.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self._series: Dict[Tuple[str, LabelPairs], Metric] = {}

    # ------------------------------------------------------------ constructors
    def _get(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: Optional[Mapping[str, str]],
        boundaries: Optional[Sequence[float]] = None,
    ) -> Metric:
        if not _NAME_OK.match(name):
            raise ValueError(f"invalid metric name {name!r} (use metric_name() to sanitize)")
        pairs = _label_pairs(labels)
        key = (name, pairs)
        metric = self._series.get(key)
        if metric is not None:
            if self._kinds[name] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {self._kinds[name]}, not {kind}"
                )
            return metric
        with self._lock:
            metric = self._series.get(key)
            if metric is not None:
                return metric
            registered = self._kinds.get(name)
            if registered is not None and registered != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {registered}, not {kind}"
                )
            if kind == "counter":
                metric = Counter(name, pairs)
            elif kind == "gauge":
                metric = Gauge(name, pairs)
            else:
                bounds = tuple(boundaries) if boundaries else self._buckets.get(
                    name, DEFAULT_LATENCY_BUCKETS
                )
                metric = Histogram(name, pairs, bounds)
                self._buckets.setdefault(name, metric.boundaries)
            self._kinds[name] = kind
            if help_text:
                self._help[name] = help_text
            self._series[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        return self._get("histogram", name, help, labels, boundaries=buckets)

    # ------------------------------------------------------------ aggregation
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every series, grouped by family."""
        with self._lock:
            series_items = list(self._series.items())
            kinds = dict(self._kinds)
            help_texts = dict(self._help)
        families: Dict[str, Any] = {}
        for (name, pairs), metric in sorted(series_items, key=lambda item: item[0]):
            family = families.setdefault(
                name,
                {"type": kinds[name], "help": help_texts.get(name, ""), "series": []},
            )
            entry: Dict[str, Any] = {"labels": dict(pairs)}
            if isinstance(metric, Histogram):
                counts, value_sum = metric.counts_and_sum()
                entry["boundaries"] = list(metric.boundaries)
                entry["counts"] = counts
                entry["sum"] = value_sum
                entry["count"] = sum(counts)
            else:
                entry["value"] = metric.value
            family["series"].append(entry)
        return families

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms add (exact); gauges keep the maximum of the
        two levels, which is the only order-independent choice for merging
        point-in-time values from workers scraped at different instants.
        """
        for name, family in snapshot.items():
            kind = family.get("type")
            for entry in family.get("series", ()):
                labels = entry.get("labels") or {}
                if kind == "counter":
                    self.counter(name, family.get("help", ""), **labels).inc(
                        float(entry.get("value", 0.0))
                    )
                elif kind == "gauge":
                    self.gauge(name, family.get("help", ""), **labels).set_max(
                        float(entry.get("value", 0.0))
                    )
                elif kind == "histogram":
                    histogram = self.histogram(
                        name,
                        family.get("help", ""),
                        buckets=entry.get("boundaries"),
                        **labels,
                    )
                    histogram.merge_counts(entry.get("counts", ()), float(entry.get("sum", 0.0)))
                else:
                    raise ValueError(f"snapshot family {name!r} has unknown type {kind!r}")

    def expose_text(self) -> str:
        """Prometheus text exposition of the current state."""
        return render_exposition(self.snapshot())


_ACTIVE_REGISTRY: Optional[MetricsRegistry] = None


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (or replace) the process-global registry and return it.

    Library code — engine, index, repetition workers — reports into this
    registry when one is installed and does nothing otherwise; the
    "otherwise" check is a single module-global read, which is what keeps
    the disabled path within the <5% overhead budget.
    """
    global _ACTIVE_REGISTRY
    _ACTIVE_REGISTRY = registry if registry is not None else MetricsRegistry()
    return _ACTIVE_REGISTRY


def disable_metrics() -> None:
    global _ACTIVE_REGISTRY
    _ACTIVE_REGISTRY = None


def active_metrics() -> Optional[MetricsRegistry]:
    return _ACTIVE_REGISTRY


def merge_snapshots(*snapshots: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge snapshot dicts (counters/histograms add, gauges take the max)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}={json.dumps(str(value))}' for key, value in pairs)
    return "{" + body + "}"


def render_exposition(snapshot: Mapping[str, Any]) -> str:
    """Render a registry snapshot as Prometheus text format (version 0.0.4)."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family.get("type", "untyped")
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in family.get("series", ()):
            labels = entry.get("labels") or {}
            if kind == "histogram":
                boundaries = list(entry.get("boundaries", ()))
                counts = list(entry.get("counts", ()))
                cumulative = 0
                for boundary, count in zip(boundaries, counts):
                    cumulative += count
                    label_text = _format_labels(labels, ("le", _format_value(boundary)))
                    lines.append(f"{name}_bucket{label_text} {cumulative}")
                if len(counts) > len(boundaries):
                    cumulative += counts[len(boundaries)]
                label_text = _format_labels(labels, ("le", "+Inf"))
                lines.append(f"{name}_bucket{label_text} {cumulative}")
                lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(entry.get('sum', 0.0))}")
                lines.append(f"{name}_count{_format_labels(labels)} {cumulative}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(entry.get('value', 0.0))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
