"""Bounded slow-query log: the top-N slowest requests with span breakdowns.

The server records every finished request here; the log keeps only the
``capacity`` slowest (a min-heap keyed on duration, so a fast request never
evicts a slow one); capacity 0 disables recording entirely.  Entries carry the request's trace id and its root
span's per-child time breakdown — enough to answer "where did the slow ones
spend their time?" straight from the ``stats`` endpoint without trawling a
trace file.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Thread-safe, bounded top-N-by-duration log."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ValueError("slow-query log capacity must be non-negative")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._sequence = itertools.count()
        # Min-heap of (duration, sequence, entry): the root is always the
        # *fastest* retained request, i.e. the next to be evicted.
        self._heap: List[Any] = []

    def record(
        self,
        op: str,
        duration_seconds: float,
        trace_id: Optional[str] = None,
        breakdown: Optional[Mapping[str, float]] = None,
        **extra: Any,
    ) -> None:
        entry: Dict[str, Any] = {
            "op": op,
            "duration_seconds": float(duration_seconds),
        }
        if trace_id is not None:
            entry["trace"] = trace_id
        if breakdown:
            entry["breakdown"] = {name: float(value) for name, value in breakdown.items()}
        entry.update(extra)
        item = (float(duration_seconds), next(self._sequence), entry)
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
            elif self._heap and item[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)

    def entries(self) -> List[Dict[str, Any]]:
        """Retained entries, slowest first (each a copy, safe to mutate)."""
        with self._lock:
            items = list(self._heap)
        items.sort(key=lambda item: (-item[0], item[1]))
        return [dict(entry) for _, _, entry in items]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
