"""Trace spans: context-propagated causality for the join/serving pipeline.

A *span* is a named, timed region of work.  Spans nest through a
:mod:`contextvars` variable, so a request handled by the service produces a
single tree — protocol decode → admission wait → coalescer linger → engine
execution (candidate → dedup → sketch-filter → verify) → response write —
correlated by one trace id even as the work hops between the event loop,
the engine thread, and repetition workers.

Design constraints, in order:

1. **Determinism.**  Span and trace ids come from :func:`itertools.count`,
   never from ``random`` — enabling tracing must not perturb the seeded
   randomness that makes pair sets bit-identical across backends/executors.
2. **Near-zero disabled overhead.**  When no tracer is installed,
   :func:`span` returns a shared no-op singleton: one global read, no
   allocation.  Hot loops stay un-instrumented; spans wrap *stages*.
3. **Plain data out.**  An emitted span is one JSON-safe dict; the optional
   sink (:class:`TraceWriter`) writes JSON lines a human — or the
   ``repro-join trace`` CLI — can read directly.

Thread hand-offs do not copy context automatically; code that moves work to
an executor wraps the callable with :func:`contextvars.copy_context` (see
``SimilarityServer._run_on_engine`` and the repetition engine) so child
spans land under the right parent.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from typing import Any, Callable, Dict, Optional

__all__ = [
    "NullSpan",
    "Span",
    "TraceWriter",
    "Tracer",
    "current_span",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "ensure_tracing",
    "event",
    "span",
    "tracer",
]

_CURRENT_SPAN: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

SpanSink = Callable[[Dict[str, Any]], None]


class Span:
    """One timed, named region; a context manager that nests via contextvars."""

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "extra",
        "child_seconds",
        "start_unix",
        "duration_seconds",
        "_start_perf",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: Optional[str],
        parent: Optional["Span"],
        extra: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        if trace_id is not None:
            self.trace_id = trace_id
        elif parent is not None:
            self.trace_id = parent.trace_id
        else:
            self.trace_id = tracer.new_trace_id()
        self.span_id = tracer.new_span_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.extra = extra
        self.child_seconds: Dict[str, float] = {}
        self.start_unix = 0.0
        self.duration_seconds = 0.0
        self._start_perf = 0.0
        self._token: Optional[contextvars.Token] = None

    def annotate(self, **extra: Any) -> None:
        """Attach key/value detail to the span (counts, outcomes, sizes)."""
        self.extra.update(extra)

    @property
    def enabled(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.duration_seconds = time.perf_counter() - self._start_perf
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            parent.child_seconds[self.name] = (
                parent.child_seconds.get(self.name, 0.0) + self.duration_seconds
            )
        if exc_type is not None and "error" not in self.extra:
            self.extra["error"] = getattr(exc_type, "__name__", str(exc_type))
        self.tracer.emit(self._record())

    def _record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_seconds": self.duration_seconds,
        }
        if self.extra:
            record["extra"] = self.extra
        return record


class NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    duration_seconds = 0.0

    @property
    def child_seconds(self) -> Dict[str, float]:
        return {}

    @property
    def enabled(self) -> bool:
        return False

    def annotate(self, **extra: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = NullSpan()


class Tracer:
    """Allocates ids and fans emitted spans out to an optional sink.

    Ids are sequential (``t1``, ``s1``, ...) from :func:`itertools.count`:
    deterministic, cheap, and — critically — independent of the seeded
    ``random`` state the join algorithms rely on.
    """

    def __init__(self, sink: Optional[SpanSink] = None) -> None:
        self.sink = sink
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    def new_trace_id(self) -> str:
        return f"t{next(self._trace_ids)}"

    def new_span_id(self) -> str:
        return f"s{next(self._span_ids)}"

    def emit(self, record: Dict[str, Any]) -> None:
        sink = self.sink
        if sink is not None:
            sink(record)


_TRACER: Optional[Tracer] = None


def enable_tracing(sink: Optional[SpanSink] = None) -> Tracer:
    """Install a process-global tracer (optionally with a span sink)."""
    global _TRACER
    _TRACER = Tracer(sink)
    return _TRACER


def ensure_tracing() -> Tracer:
    """Return the installed tracer, installing a sink-less one if absent.

    Sink-less tracing still builds span trees and per-parent
    ``child_seconds`` breakdowns (the slow-query log needs those) — it just
    writes nothing anywhere.
    """
    global _TRACER
    if _TRACER is None:
        _TRACER = Tracer(None)
    return _TRACER


def disable_tracing() -> None:
    global _TRACER
    _TRACER = None


def tracer() -> Optional[Tracer]:
    return _TRACER


def current_span() -> Optional[Span]:
    return _CURRENT_SPAN.get()


def current_trace_id() -> Optional[str]:
    active = _CURRENT_SPAN.get()
    return active.trace_id if active is not None else None


def span(name: str, trace_id: Optional[str] = None, **extra: Any):
    """Open a span under the current context, or a no-op when disabled.

    ``trace_id`` pins the root of a new tree to an externally meaningful id
    (the service uses ``req-<n>`` so spans correlate with request logs);
    child spans inherit their parent's id automatically.
    """
    active = _TRACER
    if active is None:
        return _NULL_SPAN
    return Span(active, name, trace_id, _CURRENT_SPAN.get(), extra)


def event(name: str, **extra: Any) -> None:
    """Emit a zero-duration marker under the current span."""
    active = _TRACER
    if active is None:
        return
    parent = _CURRENT_SPAN.get()
    record: Dict[str, Any] = {
        "trace": parent.trace_id if parent is not None else active.new_trace_id(),
        "span": active.new_span_id(),
        "parent": parent.span_id if parent is not None else None,
        "name": name,
        "start_unix": time.time(),
        "duration_seconds": 0.0,
    }
    if extra:
        record["extra"] = extra
    active.emit(record)


class TraceWriter:
    """A span sink appending JSON lines to a file; safe across threads."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def __call__(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()
