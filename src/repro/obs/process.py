"""Process-level facts for the service ``stats``/``metrics`` endpoints."""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Dict

try:
    import resource
except ImportError:  # pragma: no cover - resource is POSIX-only
    resource = None  # type: ignore[assignment]

__all__ = ["process_rss_bytes", "process_start_metadata"]

_PROCESS_START_UNIX = time.time()


def process_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; 0 on platforms
    without the ``resource`` module.
    """
    if resource is None:  # pragma: no cover
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
        return int(peak)
    return int(peak) * 1024


def process_start_metadata() -> Dict[str, Any]:
    """Identity of this process: pid, interpreter, and import-time start."""
    return {
        "pid": os.getpid(),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "process_started_unix": _PROCESS_START_UNIX,
    }
