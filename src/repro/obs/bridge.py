"""Bridge between :class:`repro.result.JoinStats` and the metrics registry.

``JoinStats`` stays the deterministic, mergeable record the algorithms
produce (it travels through process pools and index save files); the
registry is the cumulative, scrapeable view.  This module maps one onto the
other under a single naming scheme:

=============================  =============================================
JoinStats field / extra key    registry series
=============================  =============================================
``pre_candidates`` etc.        ``repro_join_<field>_total`` counter
``candidate_seconds`` etc.     ``repro_join_<stage>_seconds_total`` counter
``elapsed_seconds``            ``repro_join_elapsed_seconds`` histogram
``extra["sketch_hits"]``       ``repro_join_extra_sketch_hits_total`` counter
``extra["max_depth"]``         ``repro_join_extra_max_depth`` gauge (max)
=============================  =============================================

All series carry an ``algorithm`` label.  ``max_``-prefixed extras follow
``JoinStats.merge``'s max semantics (a gauge keeping the running maximum);
every other extra is a monotone counter.  Dynamic keys pass through
:func:`repro.obs.metrics.metric_name`, so arbitrary ``add_extra`` keys
cannot produce an invalid metric name.

The bridge is called once per *merged* join result (from
:func:`repro.join.similarity_join` and the index's query/insert paths), not
per repetition — worker-shard stats already aggregate exactly through
``JoinStats.merge``, so routing the merged result keeps process-pool runs
and serial runs identical in the registry.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, active_metrics, metric_name

__all__ = ["record_join_stats"]

_COUNT_FIELDS = ("pre_candidates", "candidates", "verified", "results", "repetitions")
_STAGE_FIELDS = (
    "preprocessing_seconds",
    "candidate_seconds",
    "filter_seconds",
    "verify_seconds",
    "index_build_seconds",
    "worker_seconds",
)


def record_join_stats(stats, registry: Optional[MetricsRegistry] = None) -> None:
    """Fold one join's statistics into the (or a given) metrics registry.

    A no-op when no registry is active — the disabled path is one global
    read plus this call's frame.
    """
    target = registry if registry is not None else active_metrics()
    if target is None:
        return
    algorithm = stats.algorithm or "unknown"
    target.counter(
        "repro_join_runs_total", "Completed join executions.", algorithm=algorithm
    ).inc()
    for field_name in _COUNT_FIELDS:
        value = float(getattr(stats, field_name))
        if value > 0:
            target.counter(
                f"repro_join_{field_name}_total",
                f"Summed JoinStats.{field_name} across joins.",
                algorithm=algorithm,
            ).inc(value)
    for field_name in _STAGE_FIELDS:
        value = float(getattr(stats, field_name))
        if value > 0:
            target.counter(
                f"repro_join_{field_name}_total",
                f"Summed JoinStats.{field_name} across joins.",
                algorithm=algorithm,
            ).inc(value)
    target.histogram(
        "repro_join_elapsed_seconds",
        "Wall-clock latency of whole join executions.",
        algorithm=algorithm,
    ).observe(float(stats.elapsed_seconds))
    for key, value in stats.extra.items():
        safe = metric_name(key)
        if key.startswith("max_"):
            target.gauge(
                f"repro_join_extra_{safe}",
                "Running maximum of a max_-style JoinStats extra.",
                algorithm=algorithm,
            ).set_max(float(value))
        elif value >= 0:
            target.counter(
                f"repro_join_extra_{safe}_total",
                "Summed JoinStats extra counter.",
                algorithm=algorithm,
            ).inc(float(value))
        else:  # a negative ad-hoc value cannot be a monotone counter
            target.gauge(
                f"repro_join_extra_{safe}",
                "Non-monotone JoinStats extra.",
                algorithm=algorithm,
            ).set(float(value))
