"""Observability layer: metrics registry, trace spans, and slow-query log.

Everything here is stdlib-only and strictly off the deterministic path:

* :mod:`repro.obs.metrics` — counters, gauges, mergeable fixed-bucket
  histograms; Prometheus text exposition and JSON snapshots.  A process
  global registry (:func:`enable_metrics` / :func:`active_metrics`) lets
  library code report without threading a handle through every signature.
* :mod:`repro.obs.tracing` — context-propagated spans with deterministic
  ids (``itertools.count``, never ``random``), an optional JSON-lines sink,
  and a shared no-op span when disabled.
* :mod:`repro.obs.slowlog` — bounded top-N slowest requests with their span
  breakdowns, surfaced by the service ``stats`` endpoint.
* :mod:`repro.obs.bridge` — maps merged :class:`repro.result.JoinStats`
  onto the registry naming scheme.

With neither a registry nor a tracer installed every hook degrades to one
module-global read, which the overhead guard test holds under 5% on a
10k-record join — and instrumentation never touches the seeded randomness,
so pair sets stay bit-identical with observability on or off.
"""

from repro.obs.bridge import record_join_stats
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    disable_metrics,
    enable_metrics,
    merge_snapshots,
    metric_name,
    percentile,
    render_exposition,
)
from repro.obs.process import process_rss_bytes, process_start_metadata
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import (
    NullSpan,
    Span,
    TraceWriter,
    Tracer,
    current_span,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    ensure_tracing,
    event,
    span,
    tracer,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "SlowQueryLog",
    "Span",
    "TraceWriter",
    "Tracer",
    "active_metrics",
    "current_span",
    "current_trace_id",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "ensure_tracing",
    "event",
    "merge_snapshots",
    "metric_name",
    "percentile",
    "process_rss_bytes",
    "process_start_metadata",
    "record_join_stats",
    "render_exposition",
    "span",
    "tracer",
]
