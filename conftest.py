"""Root pytest configuration: marker assignment for the tier split.

Everything under ``tests/`` is the fast tier-1 correctness suite; everything
under ``benchmarks/`` is the slow table-regeneration suite.  The markers are
attached here by path so individual test modules stay clean, and selection
works uniformly::

    pytest -m tier1          # fast gate (what CI runs per Python version)
    pytest -m "not slow"     # equivalent
    pytest -m slow           # benchmark suite only
"""

from __future__ import annotations

from pathlib import Path

import pytest

_ROOT = Path(__file__).parent


def pytest_collection_modifyitems(config, items) -> None:
    for item in items:
        try:
            relative = Path(item.fspath).relative_to(_ROOT)
        except ValueError:
            continue
        top = relative.parts[0] if relative.parts else ""
        if top == "benchmarks":
            item.add_marker(pytest.mark.slow)
        elif top == "tests":
            item.add_marker(pytest.mark.tier1)
