"""Entity resolution over text records (the paper's motivating application).

The introduction of the paper motivates set similarity join with entity
resolution: find pairs of records that refer to the same real-world entity
even when the strings differ slightly.  This example:

1. takes a list of company-name strings containing several misspelled or
   reformatted duplicates,
2. converts them to sets of character 3-grams (shingles) with
   ``repro.datasets.transform.shingle_strings``,
3. runs CPSJOIN at a Jaccard threshold of 0.5, and
4. prints the detected duplicate groups together with precision/recall
   against the known ground truth.

Run with::

    python examples/entity_resolution.py
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro import CPSJoinConfig, similarity_join
from repro.datasets.transform import shingle_strings
from repro.evaluation.metrics import precision, recall

# Company names; tuples of indices that refer to the same entity.
COMPANY_NAMES: List[str] = [
    "International Business Machines Corporation",   # 0
    "Internatonal Business Machines Corp",            # 1 (same as 0)
    "IBM Corporation",                                 # 2
    "Acme Data Engineering ApS",                       # 3
    "ACME Data Engineering",                           # 4 (same as 3)
    "Acme Data Enginering ApS",                        # 5 (same as 3)
    "Copenhagen Similarity Systems A/S",               # 6
    "Copenhagen Similarity Systems",                   # 7 (same as 6)
    "Aarhus Analytics",                                # 8
    "Aarhus Analytics Group",                          # 9 (same as 8)
    "Nordic Cloud Databases",                          # 10
    "Baltic Cloud Databases",                          # 11
]

# Ground truth: pairs of indices that are true duplicates (by inspection).
TRUE_DUPLICATES: Set[Tuple[int, int]] = {(0, 1), (3, 4), (3, 5), (4, 5), (6, 7), (8, 9)}


def main() -> None:
    threshold = 0.5

    # 1. Tokenize: each name becomes a set of character 3-grams.
    dataset, vocabulary = shingle_strings(COMPANY_NAMES, shingle_length=3)
    print(f"{len(COMPANY_NAMES)} company names, {len(vocabulary)} distinct 3-gram tokens\n")

    # 2. Join with CPSJOIN.
    result = similarity_join(
        dataset.records, threshold, algorithm="cpsjoin", config=CPSJoinConfig(seed=7)
    )

    # 3. Report the matched pairs.
    print(f"Pairs with 3-gram Jaccard similarity >= {threshold}:")
    for first, second in sorted(result.pairs):
        marker = "TRUE " if (first, second) in TRUE_DUPLICATES else "extra"
        print(f"  [{marker}] {COMPANY_NAMES[first]!r}  <->  {COMPANY_NAMES[second]!r}")

    # 4. Quality against the hand-labelled ground truth.
    pair_precision = precision(result.pairs, TRUE_DUPLICATES)
    pair_recall = recall(result.pairs, TRUE_DUPLICATES)
    print(f"\nPrecision vs labelled duplicates: {pair_precision:.2f}")
    print(f"Recall    vs labelled duplicates: {pair_recall:.2f}")
    print("\nNote: precision below 1.0 here means the *similarity threshold* matched a")
    print("non-duplicate (e.g. two different 'Cloud Databases' companies), not that the")
    print("join reported a pair below the threshold — the join itself never does that.")


if __name__ == "__main__":
    main()
