"""Robustness to frequent tokens: CPSJOIN vs ALLPAIRS on TOKENS-style data.

Section VI-A.3 of the paper shows that prefix-filtering joins collapse when
every token is frequent, while CPSJOIN is unaffected — its cost depends on the
similarity structure, not on token rarity.  This example regenerates that
comparison at laptop scale:

1. generate three TOKENS-style datasets where each token appears in an
   increasing number of sets (the TOKENS10K/15K/20K surrogates),
2. run ALLPAIRS and CPSJOIN (at ≥ 90 % recall) on each, and
3. print the join times and the growing speedup.

Run with::

    python examples/token_robustness.py [--scale 0.3]
"""

from __future__ import annotations

import argparse

from repro.core.config import CPSJoinConfig
from repro.datasets.profiles import generate_profile_dataset
from repro.evaluation.runner import ExperimentRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3, help="dataset scale factor (default 0.3)")
    parser.add_argument("--threshold", type=float, default=0.7, help="Jaccard threshold (default 0.7)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    runner = ExperimentRunner(target_recall=0.9, seed=args.seed)
    print(f"TOKENS robustness demo (threshold {args.threshold}, scale {args.scale})\n")
    print(f"{'dataset':<12} {'records':>8} {'sets/token':>11} {'ALL (s)':>9} {'CP (s)':>9} {'speedup':>8} {'CP recall':>10}")

    for name in ("TOKENS10K", "TOKENS15K", "TOKENS20K"):
        dataset = generate_profile_dataset(name, scale=args.scale, seed=args.seed)
        statistics = dataset.statistics()

        exact = runner.run_allpairs(dataset, args.threshold)
        approximate = runner.run_cpsjoin(dataset, args.threshold, config=CPSJoinConfig(seed=args.seed))

        speedup = exact.join_seconds / max(approximate.join_seconds, 1e-9)
        print(
            f"{name:<12} {len(dataset):>8} {statistics.average_sets_per_token:>11.1f} "
            f"{exact.join_seconds:>9.3f} {approximate.join_seconds:>9.3f} "
            f"{speedup:>8.1f} {approximate.recall:>10.2f}"
        )

    print(
        "\nEvery token appears in a constant fraction of the sets, so every ALLPAIRS\n"
        "inverted list grows with the collection while the result set stays fixed —\n"
        "the speedup of CPSJOIN grows correspondingly (compare the rows top to bottom)."
    )


if __name__ == "__main__":
    main()
