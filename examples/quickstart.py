"""Quickstart: run a set similarity self-join with CPSJOIN.

This example builds a tiny collection of token sets, runs the approximate
CPSJOIN algorithm and the exact ALLPAIRS baseline at the same Jaccard
threshold, and compares their outputs.  It is the five-minute tour of the
public API:

* ``repro.similarity_join`` — one call, pick the algorithm by name,
* ``repro.CPSJoinConfig`` — the paper's parameters with sensible defaults,
* ``JoinResult`` — reported pairs plus run statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CPSJoinConfig, similarity_join
from repro.similarity.measures import jaccard_similarity


def main() -> None:
    # A toy collection: three clusters of near-duplicate "documents"
    # represented as sets of integer token ids, plus some unrelated records.
    records = [
        [1, 2, 3, 4, 5],          # 0: cluster A
        [1, 2, 3, 4, 6],          # 1: cluster A (J = 4/6 with record 0)
        [1, 2, 3, 4, 5, 6],       # 2: cluster A (J = 5/6 with record 0)
        [10, 11, 12, 13],         # 3: cluster B
        [10, 11, 12, 14],         # 4: cluster B (J = 3/5 with record 3)
        [20, 21, 22, 23, 24, 25], # 5: unrelated
        [30, 31, 32],             # 6: unrelated
        [40, 41, 42, 43, 44],     # 7: unrelated
    ]
    threshold = 0.5

    print(f"Joining {len(records)} records at Jaccard threshold {threshold}\n")

    # --- the paper's algorithm -------------------------------------------------
    config = CPSJoinConfig(repetitions=10, seed=1)  # paper defaults, fixed seed
    approximate = similarity_join(records, threshold, algorithm="cpsjoin", config=config)

    # --- the exact baseline ----------------------------------------------------
    exact = similarity_join(records, threshold, algorithm="allpairs")

    print("CPSJOIN reported pairs (approximate, 100% precision):")
    for first, second in sorted(approximate.pairs):
        similarity = jaccard_similarity(records[first], records[second])
        print(f"  records {first} and {second}: J = {similarity:.3f}")

    print("\nALLPAIRS reported pairs (exact):")
    for first, second in sorted(exact.pairs):
        similarity = jaccard_similarity(records[first], records[second])
        print(f"  records {first} and {second}: J = {similarity:.3f}")

    recall = approximate.recall_against(exact.pairs)
    print(f"\nCPSJOIN recall vs exact result: {recall:.1%}")
    print(f"CPSJOIN statistics: {approximate.stats.pre_candidates} pre-candidates, "
          f"{approximate.stats.candidates} candidates, {len(approximate.pairs)} results "
          f"over {approximate.stats.repetitions} repetitions")


if __name__ == "__main__":
    main()
