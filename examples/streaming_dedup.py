"""Streaming deduplication with the Chosen Path index.

The join algorithms in this repository materialize all similar pairs of a
static collection.  A common production variant is *streaming*: records
arrive one at a time and each new record must be checked against everything
seen so far before being admitted.  This is an index-once/query-many
workload, and it is exactly what the Chosen Path index (the data structure
CPSJOIN was derived from, reference [5] of the paper) is built for.

The example simulates a stream of "user profiles" (token sets) in which
roughly one record in five is a near-duplicate of an earlier one, and
deduplicates the stream with:

* :class:`repro.index.ChosenPathIndex` — the paper-adjacent structure, and
* :class:`repro.index.MinHashLSHIndex` — the classic LSH banding baseline,

reporting how many duplicates each catches and how many candidate
verifications each needed (the work measure that separates them from a
naive scan).

Run with::

    python examples/streaming_dedup.py [--stream-size 800]
"""

from __future__ import annotations

import argparse
from typing import List, Set, Tuple

import numpy as np

from repro.datasets.synthetic import make_near_duplicate
from repro.index import ChosenPathIndex, MinHashLSHIndex


def build_stream(stream_size: int, seed: int) -> Tuple[List[Tuple[int, ...]], Set[int]]:
    """A stream of token sets in which ~20 % are near-duplicates of earlier records."""
    rng = np.random.default_rng(seed)
    universe_size = 5000
    stream: List[Tuple[int, ...]] = []
    duplicate_positions: Set[int] = set()
    for position in range(stream_size):
        if stream and rng.random() < 0.2:
            base = stream[int(rng.integers(0, len(stream)))]
            record = make_near_duplicate(base, target_jaccard=0.75, universe_size=universe_size, rng=rng)
            duplicate_positions.add(position)
        else:
            size = int(rng.integers(10, 25))
            record = tuple(sorted(rng.choice(universe_size, size=size, replace=False).tolist()))
        stream.append(record)
    return stream, duplicate_positions


def deduplicate(index, stream, threshold: float) -> Tuple[Set[int], int]:
    """Run the stream through an index; returns flagged positions and candidate count."""
    flagged: Set[int] = set()
    total_candidates = 0
    for position, record in enumerate(stream):
        total_candidates += len(index.candidates(record))
        if index.query(record):
            flagged.add(position)
        index.insert(record)
    return flagged, total_candidates


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stream-size", type=int, default=800)
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    stream, true_duplicates = build_stream(args.stream_size, args.seed)
    print(f"Stream of {len(stream)} records, {len(true_duplicates)} planted near-duplicates, "
          f"threshold {args.threshold}\n")

    naive_comparisons = len(stream) * (len(stream) - 1) // 2

    for name, index in (
        ("ChosenPathIndex", ChosenPathIndex(args.threshold, depth=3, repetitions=12, seed=args.seed)),
        ("MinHashLSHIndex", MinHashLSHIndex(args.threshold, bands=32, rows=4, seed=args.seed)),
    ):
        flagged, candidates = deduplicate(index, stream, args.threshold)
        caught = len(flagged & true_duplicates)
        extra = len(flagged - true_duplicates)
        print(f"{name}:")
        print(f"  duplicates caught:        {caught} / {len(true_duplicates)}")
        print(f"  additional pairs flagged: {extra} (records genuinely above the threshold by chance)")
        print(f"  candidate verifications:  {candidates} "
              f"({candidates / naive_comparisons:.1%} of a naive all-pairs scan)")
        print()

    print("Both indexes verify every candidate exactly, so anything flagged truly exceeds")
    print("the similarity threshold; the difference between them (and versus a naive scan)")
    print("is how many candidate verifications they need to get there.")


if __name__ == "__main__":
    main()
