"""Streaming deduplication with the build-once/query-many SimilarityIndex.

The join algorithms in this repository materialize all similar pairs of a
static collection.  A common production variant is *streaming*: records
arrive in batches and each new record must be checked against everything
seen so far before being admitted.  Before the index existed this meant
re-running a batch join per batch; :class:`repro.index.SimilarityIndex`
turns it into point lookups (``query``) plus incremental updates
(``insert``) — no rebuild, ever.

The example simulates a stream of "user profiles" (token sets) in which
roughly one record in five is a near-duplicate of an earlier one, and
deduplicates the stream with three index configurations:

* ``exact`` — the token inverted index: query results are exactly the pairs
  an exact batch join would report, so nothing above the threshold slips
  through;
* ``chosenpath`` — the Chosen Path forest (the structure CPSJOIN was derived
  from, reference [5] of the paper);
* ``lsh`` — classic MinHash LSH banding.

Per batch it reports the query latency (milliseconds per record), so the
build-once/query-many advantage is visible directly: latency stays flat as
the index grows instead of the per-batch cost of a re-join growing with the
history.

Run with::

    python examples/streaming_dedup.py [--stream-size 800] [--batch-size 100]
"""

from __future__ import annotations

import argparse
import time
from typing import List, Set, Tuple

import numpy as np

from repro.datasets.synthetic import make_near_duplicate
from repro.index import SimilarityIndex


def build_stream(stream_size: int, seed: int) -> Tuple[List[Tuple[int, ...]], Set[int]]:
    """A stream of token sets in which ~20 % are near-duplicates of earlier records."""
    rng = np.random.default_rng(seed)
    universe_size = 5000
    stream: List[Tuple[int, ...]] = []
    duplicate_positions: Set[int] = set()
    for position in range(stream_size):
        if stream and rng.random() < 0.2:
            base = stream[int(rng.integers(0, len(stream)))]
            record = make_near_duplicate(base, target_jaccard=0.75, universe_size=universe_size, rng=rng)
            duplicate_positions.add(position)
        else:
            size = int(rng.integers(10, 25))
            record = tuple(sorted(rng.choice(universe_size, size=size, replace=False).tolist()))
        stream.append(record)
    return stream, duplicate_positions


def deduplicate(
    index: SimilarityIndex,
    stream: List[Tuple[int, ...]],
    batch_size: int,
    verbose: bool = True,
) -> Set[int]:
    """Stream records through query + insert; returns the flagged positions.

    Each record is queried against everything inserted so far — including
    earlier records of the same batch, which a batch-level
    ``query_batch``-then-``insert_all`` round would miss — then inserted;
    the per-batch latency is reported.
    """
    flagged: Set[int] = set()
    for start in range(0, len(stream), batch_size):
        batch = stream[start : start + batch_size]
        began = time.perf_counter()
        for offset, record in enumerate(batch):
            if index.query(record):
                flagged.add(start + offset)
            index.insert(record)
        elapsed = time.perf_counter() - began
        if verbose:
            print(
                f"  batch {start // batch_size + 1:>3}: {len(batch):>4} records, "
                f"index size {len(index):>5}, "
                f"{1000.0 * elapsed / len(batch):6.3f} ms/record"
            )
    return flagged


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stream-size", type=int, default=800)
    parser.add_argument("--batch-size", type=int, default=100)
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    stream, true_duplicates = build_stream(args.stream_size, args.seed)
    print(
        f"Stream of {len(stream)} records in batches of {args.batch_size}, "
        f"{len(true_duplicates)} planted near-duplicates, threshold {args.threshold}\n"
    )

    configurations = (
        ("exact", dict(candidates="exact", backend="numpy")),
        ("chosenpath", dict(candidates="chosenpath", chosen_path_depth=3, chosen_path_repetitions=12)),
        ("lsh", dict(candidates="lsh", lsh_bands=32, lsh_rows=4)),
    )
    for name, options in configurations:
        index = SimilarityIndex(args.threshold, seed=args.seed, **options)
        print(f"SimilarityIndex(candidates={name!r}):")
        began = time.perf_counter()
        flagged = deduplicate(index, stream, args.batch_size)
        total = time.perf_counter() - began
        caught = len(flagged & true_duplicates)
        extra = len(flagged - true_duplicates)
        stats = index.stats
        print(f"  duplicates caught:        {caught} / {len(true_duplicates)}")
        print(f"  additional pairs flagged: {extra} (records genuinely above the threshold by chance)")
        print(
            f"  candidate verifications:  {stats.verified} "
            f"({stats.verified / (len(stream) * (len(stream) - 1) // 2):.2%} of a naive all-pairs scan)"
        )
        print(
            f"  stage split:              candidate {stats.candidate_seconds:.3f}s / "
            f"filter {stats.filter_seconds:.3f}s / verify {stats.verify_seconds:.3f}s "
            f"(total {total:.3f}s, inserts {stats.index_build_seconds:.3f}s)"
        )
        print()

    print("Every flagged record was verified exactly against the matching earlier record,")
    print("so anything flagged truly exceeds the similarity threshold.  The exact mode")
    print("misses nothing by construction; the approximate modes trade a bounded miss")
    print("probability for sublinear candidate generation.")


if __name__ == "__main__":
    main()
