"""Streaming deduplication — offline index or live similarity-search server.

The join algorithms in this repository materialize all similar pairs of a
static collection.  A common production variant is *streaming*: records
arrive in batches and each new record must be checked against everything
seen so far before being admitted.  :class:`repro.index.SimilarityIndex`
turns that into point lookups (``query``) plus incremental updates
(``insert``) — and :mod:`repro.service` puts the same index behind an
asyncio server, so the deduplicator can live in a different process than
the index.

The example simulates a stream of "user profiles" (token sets) in which
roughly one record in five is a near-duplicate of an earlier one, and
deduplicates the stream in one of three ways:

* **default** — three in-process index configurations (``exact``: nothing
  above the threshold slips through; ``chosenpath``: the Chosen Path forest
  CPSJOIN was derived from; ``lsh``: classic MinHash LSH banding);
* ``--serve`` — the same ``exact`` configuration behind a live in-process
  :class:`repro.service.SimilarityServer`, talked to through the blocking
  client.  Because the server's coalescer only *reschedules* queries, the
  flagged set is identical to the offline run — which the example asserts;
* ``--connect HOST:PORT`` — run the stream against an external server
  started with ``repro-join serve`` (whatever threshold/configuration it
  was started with).

Per batch it reports the query latency (milliseconds per record), so the
build-once/query-many advantage is visible directly: latency stays flat as
the index grows instead of the per-batch cost of a re-join growing with the
history.

Run with::

    python examples/streaming_dedup.py [--stream-size 800] [--batch-size 100]
    python examples/streaming_dedup.py --serve
    repro-join serve --threshold 0.5 --port 7777 &
    python examples/streaming_dedup.py --connect 127.0.0.1:7777
"""

from __future__ import annotations

import argparse
import time
from typing import List, Set, Tuple

import numpy as np

from repro.datasets.synthetic import make_near_duplicate
from repro.index import SimilarityIndex


def build_stream(stream_size: int, seed: int) -> Tuple[List[Tuple[int, ...]], Set[int]]:
    """A stream of token sets in which ~20 % are near-duplicates of earlier records."""
    rng = np.random.default_rng(seed)
    universe_size = 5000
    stream: List[Tuple[int, ...]] = []
    duplicate_positions: Set[int] = set()
    for position in range(stream_size):
        if stream and rng.random() < 0.2:
            base = stream[int(rng.integers(0, len(stream)))]
            record = make_near_duplicate(base, target_jaccard=0.75, universe_size=universe_size, rng=rng)
            duplicate_positions.add(position)
        else:
            size = int(rng.integers(10, 25))
            record = tuple(sorted(rng.choice(universe_size, size=size, replace=False).tolist()))
        stream.append(record)
    return stream, duplicate_positions


def deduplicate(
    backend,
    stream: List[Tuple[int, ...]],
    batch_size: int,
    verbose: bool = True,
) -> Set[int]:
    """Stream records through query + insert; returns the flagged positions.

    ``backend`` is anything with ``query(record)`` / ``insert(record)`` —
    a :class:`SimilarityIndex` or a :class:`repro.service.ServiceClient`
    speak the identical duck type, so the same loop runs in-process or over
    the wire.  Each record is queried against everything inserted so far —
    including earlier records of the same batch — then inserted.
    """
    flagged: Set[int] = set()
    indexed = 0
    for start in range(0, len(stream), batch_size):
        batch = stream[start : start + batch_size]
        began = time.perf_counter()
        for offset, record in enumerate(batch):
            if backend.query(record):
                flagged.add(start + offset)
            backend.insert(record)
            indexed += 1
        elapsed = time.perf_counter() - began
        if verbose:
            print(
                f"  batch {start // batch_size + 1:>3}: {len(batch):>4} records, "
                f"index size {indexed:>5}, "
                f"{1000.0 * elapsed / len(batch):6.3f} ms/record"
            )
    return flagged


def report(flagged: Set[int], true_duplicates: Set[int], total: float) -> None:
    caught = len(flagged & true_duplicates)
    extra = len(flagged - true_duplicates)
    print(f"  duplicates caught:        {caught} / {len(true_duplicates)}")
    print(f"  additional pairs flagged: {extra} (records genuinely above the threshold by chance)")
    print(f"  total wall clock:         {total:.3f}s")
    print()


def run_in_process(args, stream, true_duplicates) -> None:
    configurations = (
        ("exact", dict(candidates="exact", backend="numpy")),
        ("chosenpath", dict(candidates="chosenpath", chosen_path_depth=3, chosen_path_repetitions=12)),
        ("lsh", dict(candidates="lsh", lsh_bands=32, lsh_rows=4)),
    )
    for name, options in configurations:
        index = SimilarityIndex(args.threshold, seed=args.seed, **options)
        print(f"SimilarityIndex(candidates={name!r}):")
        began = time.perf_counter()
        flagged = deduplicate(index, stream, args.batch_size)
        total = time.perf_counter() - began
        report(flagged, true_duplicates, total)
        stats = index.stats
        print(
            f"  candidate verifications:  {stats.verified} "
            f"({stats.verified / (len(stream) * (len(stream) - 1) // 2):.2%} of a naive all-pairs scan)"
        )
        print(
            f"  stage split:              candidate {stats.candidate_seconds:.3f}s / "
            f"filter {stats.filter_seconds:.3f}s / verify {stats.verify_seconds:.3f}s "
            f"(inserts {stats.index_build_seconds:.3f}s)\n"
        )


def run_against_live_server(args, stream, true_duplicates) -> None:
    from repro.service import ServiceClient, SimilarityServer, serve_in_thread

    # Offline reference first: the server must flag the exact same records.
    offline = SimilarityIndex(args.threshold, seed=args.seed, candidates="exact", backend="numpy")
    offline_flagged = deduplicate(offline, stream, args.batch_size, verbose=False)

    server = SimilarityServer(
        index_factory=lambda: SimilarityIndex(
            args.threshold, seed=args.seed, candidates="exact", backend="numpy"
        ),
        max_linger_ms=args.max_linger_ms,
    )
    handle = serve_in_thread(server)
    print(f"SimilarityServer on {handle.address[0]}:{handle.address[1]} (candidates='exact'):")
    try:
        with ServiceClient.connect(*handle.address) as client:
            began = time.perf_counter()
            flagged = deduplicate(client, stream, args.batch_size)
            total = time.perf_counter() - began
            report(flagged, true_duplicates, total)
            session = client.stats()["session"]
            print(f"  server-side verifications: {int(session['verified'])}")
    finally:
        handle.stop()
    assert flagged == offline_flagged, "server run diverged from the offline index"
    print("  parity: the server flagged exactly the records the offline exact index flags.\n")


def run_against_external_server(args, stream, true_duplicates) -> None:
    from repro.service import ServiceClient

    host, _, port = args.connect.rpartition(":")
    print(f"External server at {host}:{port}:")
    with ServiceClient.connect(host or "127.0.0.1", int(port)) as client:
        print(f"  serving {client.health()['records']} pre-existing records")
        began = time.perf_counter()
        flagged = deduplicate(client, stream, args.batch_size)
        total = time.perf_counter() - began
    report(flagged, true_duplicates, total)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stream-size", type=int, default=800)
    parser.add_argument("--batch-size", type=int, default=100)
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the stream against a live in-process SimilarityServer and "
        "assert parity with the offline exact index",
    )
    parser.add_argument(
        "--connect",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="run the stream against an external `repro-join serve` instance",
    )
    parser.add_argument(
        "--max-linger-ms",
        type=float,
        default=2.0,
        help="coalescer linger of the in-process server started by --serve",
    )
    args = parser.parse_args()

    stream, true_duplicates = build_stream(args.stream_size, args.seed)
    print(
        f"Stream of {len(stream)} records in batches of {args.batch_size}, "
        f"{len(true_duplicates)} planted near-duplicates, threshold {args.threshold}\n"
    )

    if args.connect:
        run_against_external_server(args, stream, true_duplicates)
        return
    if args.serve:
        run_against_live_server(args, stream, true_duplicates)
        return
    run_in_process(args, stream, true_duplicates)
    print("Every flagged record was verified exactly against the matching earlier record,")
    print("so anything flagged truly exceeds the similarity threshold.  The exact mode")
    print("misses nothing by construction; the approximate modes trade a bounded miss")
    print("probability for sublinear candidate generation.")


if __name__ == "__main__":
    main()
