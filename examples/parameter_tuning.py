"""Parameter tuning: how CPSJOIN's knobs trade speed against recall.

Figure 3 of the paper studies the three implementation parameters of CPSJOIN:
the brute-force limit, the brute-force aggressiveness ε, and the sketch length
ℓ.  This example sweeps each parameter on a frequent-token surrogate dataset
and prints join time and recall for every setting, so you can see the same
shapes the paper reports:

* very small ``limit`` slows the join down (deep, skinny recursion trees);
* larger ``ε`` brute-forces more points and generally does not pay off;
* one-word sketches filter poorly — two or more words are clearly better.

Run with::

    python examples/parameter_tuning.py [--scale 0.25]
"""

from __future__ import annotations

import argparse

from repro.core.config import CPSJoinConfig
from repro.datasets.profiles import generate_profile_dataset
from repro.evaluation.runner import ExperimentRunner


def sweep(runner: ExperimentRunner, dataset, threshold: float, name: str, values, make_config) -> None:
    print(f"\n--- sweep of {name} (threshold {threshold}) ---")
    print(f"{name:>14} {'join (s)':>10} {'recall':>8} {'verified pairs':>15}")
    for value in values:
        measurement = runner.run_cpsjoin(dataset, threshold, config=make_config(value))
        print(
            f"{str(value):>14} {measurement.join_seconds:>10.3f} {measurement.recall:>8.2f} "
            f"{measurement.stats.verified:>15}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25, help="dataset scale factor (default 0.25)")
    parser.add_argument("--dataset", default="UNIFORM005", help="surrogate dataset name (default UNIFORM005)")
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    dataset = generate_profile_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(f"Dataset {args.dataset}: {len(dataset)} records, "
          f"avg set size {dataset.statistics().average_set_size:.1f}")

    runner = ExperimentRunner(target_recall=0.8, seed=args.seed)

    sweep(runner, dataset, args.threshold, "limit", (10, 50, 100, 250, 500),
          lambda value: CPSJoinConfig(limit=value, seed=args.seed))
    sweep(runner, dataset, args.threshold, "epsilon", (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
          lambda value: CPSJoinConfig(epsilon=value, seed=args.seed))
    sweep(runner, dataset, args.threshold, "sketch_words", (1, 2, 4, 8, 16),
          lambda value: CPSJoinConfig(sketch_words=value, seed=args.seed))

    print("\nThe paper's final settings (Table III) are limit=250, epsilon=0.1, 8 sketch")
    print("words — the sweeps above should show those settings sitting in the flat,")
    print("fast part of each curve.")


if __name__ == "__main__":
    main()
